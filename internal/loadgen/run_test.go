package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfshapes"
	"rdfshapes/internal/obsv"
	"rdfshapes/internal/server"
)

// TestRunEndToEnd drives the full rig — open-loop dispatch, update
// stream, post-run scrape — against a real in-process server handler.
func TestRunEndToEnd(t *testing.T) {
	var data strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&data, "<http://ex/p%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .\n", i)
		fmt.Fprintf(&data, "<http://ex/p%d> <http://ex/knows> <http://ex/p%d> .\n", i, (i+1)%20)
	}
	db, err := rdfshapes.LoadNTriples(strings.NewReader(data.String()),
		rdfshapes.WithCollector(obsv.NewCollector(64)),
		rdfshapes.WithAdaptiveReplan(10))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(server.New(db))
	defer srv.Close()

	mix := &Mix{Name: "mini", Templates: []Template{
		{Name: "people", Query: `SELECT ?x WHERE { ?x a <http://ex/Person> . ?x <http://ex/knows> ?y . }`, Weight: 3},
		{Name: "byindex", Query: `SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/p${i}> . }`,
			Params: map[string]Param{"i": {Kind: "int", Min: 0, Max: 19}}},
		{Name: "broken", Query: `SELECT WHERE garbage`},
	}}

	r, err := Run(context.Background(), Options{
		BaseURL:        srv.URL,
		Mix:            mix,
		QPS:            300,
		Warmup:         100 * time.Millisecond,
		Duration:       700 * time.Millisecond,
		Concurrency:    8,
		Timeout:        2 * time.Second,
		Seed:           42,
		ZipfS:          0.5,
		UpdateInterval: 50 * time.Millisecond,
		UpdateBatch:    5,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("report invalid: %v\n%+v", err, r)
	}
	if r.Counts.Requests == 0 || r.Counts.OK == 0 {
		t.Fatalf("no traffic measured: %+v", r.Counts)
	}
	// The malformed template must classify as client errors, never kill
	// the run or leak into OK latencies.
	var broken, ok TemplateReport
	for _, tr := range r.Templates {
		switch tr.Name {
		case "broken":
			broken = tr
		case "people":
			ok = tr
		}
	}
	if broken.Counts.Requests > 0 && broken.Counts.ClientErrors != broken.Counts.Requests {
		t.Errorf("broken template counts = %+v", broken.Counts)
	}
	if ok.Counts.OK == 0 {
		t.Errorf("people template never succeeded: %+v", ok.Counts)
	}
	if ok.Latency.P50MS <= 0 {
		t.Errorf("no latency recorded: %+v", ok.Latency)
	}
	if r.AchievedQPS <= 0 {
		t.Errorf("achieved qps = %v", r.AchievedQPS)
	}
	// The update stream ran and committed triples.
	if r.Updates.Requests == 0 || r.Updates.Inserted == 0 {
		t.Errorf("update stream idle: %+v", r.Updates)
	}
	if r.Updates.Errors != 0 {
		t.Errorf("update errors: %+v", r.Updates)
	}
	// The post-run scrape found the server's q-error histogram.
	if r.QError.Count == 0 || len(r.QError.Buckets) == 0 {
		t.Errorf("q-error scrape empty: %+v", r.QError)
	}
	if r.QError.TraceSamples == 0 || r.QError.TraceMax < 1 {
		t.Errorf("trace scrape empty: %+v", r.QError)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	mix := &Mix{Name: "m", Templates: []Template{{Name: "q", Query: "SELECT 1"}}}
	for name, opts := range map[string]Options{
		"no mix":   {QPS: 1, Duration: time.Second},
		"zero qps": {Mix: mix, Duration: time.Second},
		"zero dur": {Mix: mix, QPS: 1},
	} {
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUpdateBatchOp(t *testing.T) {
	op := updateBatchOp("INSERT DATA", 3, 2)
	if !strings.HasPrefix(op, "INSERT DATA {") || !strings.HasSuffix(op, "}") {
		t.Errorf("malformed op: %q", op)
	}
	for _, want := range []string{"b3/s0", "b3/s1", "rdf-syntax-ns#type"} {
		if !strings.Contains(op, want) {
			t.Errorf("op missing %q", want)
		}
	}
	// Deterministic in (batch, n): the delete of batch 3 names exactly
	// the triples its insert created.
	if op != updateBatchOp("INSERT DATA", 3, 2) {
		t.Error("op not deterministic")
	}
	del := updateBatchOp("DELETE DATA", 3, 2)
	if strings.TrimPrefix(del, "DELETE DATA") != strings.TrimPrefix(op, "INSERT DATA") {
		t.Error("insert and delete bodies differ")
	}
}

// TestRunRoundRobinReads pins the fleet-dispatch contract: queries
// round-robin evenly across BaseURLs while the update stream and the
// post-run scrape stay on BaseURL, the primary.
func TestRunRoundRobinReads(t *testing.T) {
	db, err := rdfshapes.LoadNTriples(strings.NewReader(
		"<http://ex/a> <http://ex/p> <http://ex/b> .\n"),
		rdfshapes.WithCollector(obsv.NewCollector(64)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	real := server.New(db)

	type counters struct {
		mu               sync.Mutex
		queries, updates int
	}
	node := func(c *counters) *httptest.Server {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			c.mu.Lock()
			switch r.URL.Path {
			case "/sparql":
				c.queries++
			case "/update":
				c.updates++
			}
			c.mu.Unlock()
			real.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	var pc, r1c, r2c counters
	primary, rep1, rep2 := node(&pc), node(&r1c), node(&r2c)

	mix := &Mix{Name: "rr", Templates: []Template{
		{Name: "probe", Query: `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o . }`},
	}}
	r, err := Run(context.Background(), Options{
		BaseURL:        primary.URL,
		BaseURLs:       []string{rep1.URL, rep2.URL},
		Mix:            mix,
		QPS:            200,
		Duration:       500 * time.Millisecond,
		Concurrency:    8,
		Timeout:        2 * time.Second,
		Seed:           7,
		UpdateInterval: 20 * time.Millisecond,
		UpdateBatch:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.OK == 0 {
		t.Fatalf("no successful reads: %+v", r.Counts)
	}
	if pc.queries != 0 {
		t.Errorf("primary served %d queries; reads must stay on the replica list", pc.queries)
	}
	if r1c.queries == 0 || r2c.queries == 0 {
		t.Errorf("round-robin skipped a replica: %d vs %d queries", r1c.queries, r2c.queries)
	}
	if diff := r1c.queries - r2c.queries; diff < -1 || diff > 1 {
		t.Errorf("round-robin imbalance: %d vs %d queries", r1c.queries, r2c.queries)
	}
	if r1c.updates != 0 || r2c.updates != 0 {
		t.Errorf("replicas received updates (%d, %d); writes must stay on the primary", r1c.updates, r2c.updates)
	}
	if pc.updates == 0 || r.Updates.Requests == 0 {
		t.Errorf("primary saw no updates (stream report %+v)", r.Updates)
	}
}
