package loadgen

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"
)

type fakeNetErr struct{ timeout bool }

func (e fakeNetErr) Error() string   { return "fake net error" }
func (e fakeNetErr) Timeout() bool   { return e.timeout }
func (e fakeNetErr) Temporary() bool { return false }

var _ net.Error = fakeNetErr{}

func TestClassifyTransport(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want outcome
	}{
		{"deadline", context.DeadlineExceeded, outcomeTransportTimeout},
		{"net timeout", fakeNetErr{timeout: true}, outcomeTransportTimeout},
		{"econnreset", &net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}, outcomeTransportReset},
		{"epipe", &net.OpError{Op: "write", Err: os.NewSyscallError("write", syscall.EPIPE)}, outcomeTransportReset},
		{"unexpected eof", io.ErrUnexpectedEOF, outcomeTransportReset},
		{"eof", io.EOF, outcomeTransportReset},
		{"reset by message", errors.New(`Get "http://x": read tcp 1.2.3.4: connection reset by peer`), outcomeTransportReset},
		{"unclassifiable", errors.New("something odd"), outcomeTransport},
	}
	for _, tc := range cases {
		if got := classifyTransport(tc.err); got != tc.want {
			t.Errorf("%s: classifyTransport = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDoQueryBodyReadError pins the body subclass: a 200 whose body is
// cut short of its Content-Length is a transport failure, not an OK —
// the old accounting counted it as a success.
func TestDoQueryBodyReadError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"truncated":`))
	}))
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	got, _, _ := doQuery(context.Background(), client, Options{Timeout: time.Second}, srv.URL, "SELECT * WHERE { ?s ?p ?o }")
	if got != outcomeTransportBody {
		t.Fatalf("outcome = %v, want outcomeTransportBody", got)
	}
}

// TestDoQueryAbortedResponse pins the reset subclass end to end: a
// handler that aborts mid-response surfaces as a reset-class transport
// outcome, not the unclassified lump.
func TestDoQueryAbortedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	got, _, _ := doQuery(context.Background(), client, Options{Timeout: time.Second}, srv.URL, "SELECT * WHERE { ?s ?p ?o }")
	if got != outcomeTransportReset {
		t.Fatalf("outcome = %v, want outcomeTransportReset", got)
	}
}
