package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"rdfshapes/internal/bench"
)

// SchemaVersion is the BENCH_<n>.json schema this package writes and
// validates. Bump it when the report shape changes incompatibly;
// Validate rejects files from other versions so the perf trajectory
// stays machine-readable end to end.
const SchemaVersion = 1

// Report is the machine-readable result of one load run — the schema of
// the committed BENCH_<n>.json perf-trajectory files. All latencies are
// milliseconds.
type Report struct {
	// Schema is the report schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Mix names the query mix replayed.
	Mix string `json:"mix"`
	// Seed is the PRNG seed the run was driven by.
	Seed int64 `json:"seed"`
	// ZipfS is the template-selection rank-skew exponent.
	ZipfS float64 `json:"zipfS"`
	// Start is the wall-clock start of the measurement window (RFC3339).
	Start string `json:"start"`
	// WarmupSeconds and DurationSeconds are the configured warmup and
	// measurement windows.
	WarmupSeconds   float64 `json:"warmupSeconds"`
	DurationSeconds float64 `json:"durationSeconds"`
	// TargetQPS is the configured request rate; AchievedQPS the measured
	// rate of dispatched requests in the measurement window.
	TargetQPS   float64 `json:"targetQPS"`
	AchievedQPS float64 `json:"achievedQPS"`
	// Concurrency is the in-flight request cap.
	Concurrency int `json:"concurrency"`

	// Counts aggregates request outcomes over the measurement window.
	Counts Counts `json:"counts"`
	// Latency summarizes OK-response latency over all templates.
	Latency LatencySummary `json:"latency"`
	// Templates holds the per-template breakdown, in mix order.
	Templates []TemplateReport `json:"templates"`
	// Updates reports the concurrent SPARQL UPDATE stream (zero value
	// when the stream was disabled).
	Updates UpdateReport `json:"updates"`
	// QError is the server-side estimate-quality distribution scraped
	// after the run.
	QError QErrorReport `json:"qerror"`
	// AdaptiveReplans is rdfshapes_adaptive_replans_total summed over
	// templates at scrape time (0 when the server runs without
	// -adaptive-qerror).
	AdaptiveReplans float64 `json:"adaptiveReplans"`
}

// Counts are request outcomes: every dispatched request lands in exactly
// one bucket (Truncated additionally marks a subset of OK).
type Counts struct {
	// Requests is the total dispatched in the measurement window.
	Requests int64 `json:"requests"`
	// OK counts 200 responses; Truncated the subset whose body carried
	// "truncated":true (a budget-cut partial result).
	OK        int64 `json:"ok"`
	Truncated int64 `json:"truncated"`
	// Rejected counts 503 admission rejections, Timeouts 504 deadline
	// exceedances, ClientErrors other 4xx, ServerErrors 5xx, and
	// TransportErrors requests that failed below HTTP.
	Rejected        int64 `json:"rejected"`
	Timeouts        int64 `json:"timeouts"`
	ClientErrors    int64 `json:"clientErrors"`
	ServerErrors    int64 `json:"serverErrors"`
	TransportErrors int64 `json:"transportErrors"`
	// TransportResets, TransportTimeouts, and TransportBody subclass
	// TransportErrors (each transport failure lands in at most one;
	// unclassifiable ones only in the total): connection resets / torn
	// streams, client-side deadline expiry below HTTP, and bodies that
	// died mid-read after a 200 — three distinct server pathologies that
	// a single lump total kept indistinguishable.
	TransportResets   int64 `json:"transportResets"`
	TransportTimeouts int64 `json:"transportTimeouts"`
	TransportBody     int64 `json:"transportBodyErrors"`
	// Skipped counts ticks dropped because all Concurrency slots were
	// busy — the open-loop rig refuses to queue unboundedly, so a
	// saturated server shows up here instead of as coordinated omission.
	Skipped int64 `json:"skipped"`
}

// sum returns the dispatched-outcome total (Skipped excluded: skipped
// ticks never became requests).
func (c Counts) sum() int64 {
	return c.OK + c.Rejected + c.Timeouts + c.ClientErrors + c.ServerErrors + c.TransportErrors
}

// LatencySummary summarizes a latency sample in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"meanMS"`
	P50MS  float64 `json:"p50MS"`
	P95MS  float64 `json:"p95MS"`
	P99MS  float64 `json:"p99MS"`
	MaxMS  float64 `json:"maxMS"`
}

// TemplateReport is one template's share of the run.
type TemplateReport struct {
	Name    string         `json:"name"`
	Counts  Counts         `json:"counts"`
	Latency LatencySummary `json:"latency"`
}

// UpdateReport summarizes the concurrent update stream.
type UpdateReport struct {
	// Requests counts update POSTs issued; Errors those that failed.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Inserted and Deleted are the committed triple counts acknowledged
	// by the server.
	Inserted int64 `json:"inserted"`
	Deleted  int64 `json:"deleted"`
	// IntervalSeconds is the configured stream cadence; 0 means the
	// stream was disabled.
	IntervalSeconds float64 `json:"intervalSeconds"`
	// Batch is the triples per INSERT DATA operation.
	Batch int `json:"batch"`
}

// QErrorReport is the server-side estimate-quality distribution after
// the run, from two sources: the cumulative rdfshapes_plan_qerror
// histogram in /metrics (summed over planners) and the final q-errors of
// the recent complete traces in /trace/recent.
type QErrorReport struct {
	// Buckets are the histogram's cumulative bucket counts keyed by
	// upper bound ("1.5", "250", ..., "+Inf"), summed over planners.
	Buckets map[string]float64 `json:"buckets,omitempty"`
	// Count and Sum mirror the histogram series.
	Count float64 `json:"count"`
	Sum   float64 `json:"sum"`
	// TraceP50, TraceP95, and TraceMax summarize the q-errors of the
	// complete traces sampled from /trace/recent (0 when none).
	TraceP50 float64 `json:"traceP50"`
	TraceP95 float64 `json:"traceP95"`
	TraceMax float64 `json:"traceMax"`
	// TraceSamples is the number of traces the Trace* quantiles cover.
	TraceSamples int `json:"traceSamples"`
}

// summarize computes a LatencySummary from a millisecond sample.
func summarize(ms []float64) LatencySummary {
	s := LatencySummary{Count: int64(len(ms))}
	if len(ms) == 0 {
		return s
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.MeanMS = sum / float64(len(sorted))
	s.P50MS = quantile(sorted, 0.50)
	s.P95MS = quantile(sorted, 0.95)
	s.P99MS = quantile(sorted, 0.99)
	s.MaxMS = sorted[len(sorted)-1]
	return s
}

// quantile is the repo-wide nearest-rank quantile (internal/bench), so
// BENCH report percentiles match the paper-harness definition.
func quantile(sorted []float64, q float64) float64 {
	return bench.Quantile(sorted, q)
}

// Validate checks that r is a well-formed SchemaVersion report: version
// match, consistent counts, ordered latency quantiles, and named
// templates. It is what `loadgen -check` and the verify script run over
// every committed BENCH_<n>.json.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("loadgen: schema %d, want %d", r.Schema, SchemaVersion)
	}
	if r.Mix == "" {
		return fmt.Errorf("loadgen: report has no mix name")
	}
	if r.DurationSeconds <= 0 {
		return fmt.Errorf("loadgen: non-positive duration %v", r.DurationSeconds)
	}
	if r.TargetQPS <= 0 || r.AchievedQPS < 0 {
		return fmt.Errorf("loadgen: bad QPS (target %v, achieved %v)", r.TargetQPS, r.AchievedQPS)
	}
	if _, err := time.Parse(time.RFC3339Nano, r.Start); err != nil {
		return fmt.Errorf("loadgen: bad start timestamp %q: %v", r.Start, err)
	}
	if err := validateCounts("aggregate", r.Counts); err != nil {
		return err
	}
	if err := validateLatency("aggregate", r.Counts, r.Latency); err != nil {
		return err
	}
	if len(r.Templates) == 0 {
		return fmt.Errorf("loadgen: report has no templates")
	}
	var sum Counts
	for _, t := range r.Templates {
		if t.Name == "" {
			return fmt.Errorf("loadgen: template with empty name")
		}
		if err := validateCounts(t.Name, t.Counts); err != nil {
			return err
		}
		if err := validateLatency(t.Name, t.Counts, t.Latency); err != nil {
			return err
		}
		sum.Requests += t.Counts.Requests
		sum.OK += t.Counts.OK
	}
	if sum.Requests != r.Counts.Requests || sum.OK != r.Counts.OK {
		return fmt.Errorf("loadgen: template counts (%d requests, %d ok) disagree with aggregate (%d, %d)",
			sum.Requests, sum.OK, r.Counts.Requests, r.Counts.OK)
	}
	if r.Updates.Errors > r.Updates.Requests {
		return fmt.Errorf("loadgen: update errors %d exceed requests %d", r.Updates.Errors, r.Updates.Requests)
	}
	return nil
}

func validateCounts(name string, c Counts) error {
	for _, v := range []int64{c.Requests, c.OK, c.Truncated, c.Rejected, c.Timeouts,
		c.ClientErrors, c.ServerErrors, c.TransportErrors, c.Skipped,
		c.TransportResets, c.TransportTimeouts, c.TransportBody} {
		if v < 0 {
			return fmt.Errorf("loadgen: %s: negative count", name)
		}
	}
	if c.sum() != c.Requests {
		return fmt.Errorf("loadgen: %s: outcomes sum to %d, requests %d", name, c.sum(), c.Requests)
	}
	if c.Truncated > c.OK {
		return fmt.Errorf("loadgen: %s: truncated %d exceeds ok %d", name, c.Truncated, c.OK)
	}
	if sub := c.TransportResets + c.TransportTimeouts + c.TransportBody; sub > c.TransportErrors {
		return fmt.Errorf("loadgen: %s: transport subclasses sum to %d, exceeding transportErrors %d",
			name, sub, c.TransportErrors)
	}
	return nil
}

func validateLatency(name string, c Counts, l LatencySummary) error {
	if l.Count != c.OK {
		return fmt.Errorf("loadgen: %s: latency count %d, ok count %d", name, l.Count, c.OK)
	}
	if l.P50MS < 0 || l.P50MS > l.P95MS || l.P95MS > l.P99MS || l.P99MS > l.MaxMS {
		return fmt.Errorf("loadgen: %s: latency quantiles out of order (%v/%v/%v/%v)",
			name, l.P50MS, l.P95MS, l.P99MS, l.MaxMS)
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report without validating it; callers that care run
// Validate.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckFile loads and validates one BENCH file.
func CheckFile(path string) error {
	r, err := ReadFile(path)
	if err != nil {
		return err
	}
	if err := r.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns dir/BENCH_<n>.json with n one past the highest
// existing number (starting at 1), so successive runs append to the perf
// trajectory without clobbering it.
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// parsePromLine splits one Prometheus text-format sample into name,
// labels, and value. Returns ok=false for comments, blanks, and
// malformed lines.
func parsePromLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, 0, false
	}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	labels = map[string]string{}
	if brace >= 0 && (space < 0 || brace < space) {
		name = rest[:brace]
		rest = rest[brace+1:]
		// label values are quoted and may contain escaped quotes,
		// braces, and spaces — scan, don't split.
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = strings.TrimSpace(rest[1:])
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, false
			}
			key := rest[:eq]
			i := eq + 2
			var val strings.Builder
			for i < len(rest) && rest[i] != '"' {
				if rest[i] == '\\' && i+1 < len(rest) {
					i++
					switch rest[i] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[i])
					}
				} else {
					val.WriteByte(rest[i])
				}
				i++
			}
			if i >= len(rest) {
				return "", nil, 0, false
			}
			labels[key] = val.String()
			rest = rest[i+1:]
		}
	} else {
		if space < 0 {
			return "", nil, 0, false
		}
		name = rest[:space]
		rest = strings.TrimSpace(rest[space:])
	}
	v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// scrapeQError extracts the QErrorReport's histogram half from a
// /metrics payload: rdfshapes_plan_qerror buckets summed over planner
// labels, plus the adaptive replan total.
func scrapeQError(metrics string) (q QErrorReport, adaptiveReplans float64) {
	q.Buckets = map[string]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		name, labels, v, ok := parsePromLine(line)
		if !ok {
			continue
		}
		switch name {
		case "rdfshapes_plan_qerror_bucket":
			q.Buckets[labels["le"]] += v
		case "rdfshapes_plan_qerror_count":
			q.Count += v
		case "rdfshapes_plan_qerror_sum":
			q.Sum += v
		case "rdfshapes_adaptive_replans_total":
			adaptiveReplans += v
		}
	}
	if len(q.Buckets) == 0 {
		q.Buckets = nil
	}
	return q, adaptiveReplans
}
