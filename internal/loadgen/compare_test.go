package loadgen

import (
	"math"
	"testing"
)

func mkReport(mix string, tmpl map[string][2]float64) *Report {
	r := &Report{Mix: mix}
	for name, q := range tmpl {
		r.Templates = append(r.Templates, TemplateReport{
			Name:    name,
			Latency: LatencySummary{Count: 100, P50MS: q[0], P95MS: q[1]},
		})
		r.Latency.Count += 100
	}
	// A crude aggregate: the max of the template quantiles.
	for _, q := range tmpl {
		r.Latency.P50MS = math.Max(r.Latency.P50MS, q[0])
		r.Latency.P95MS = math.Max(r.Latency.P95MS, q[1])
	}
	return r
}

func TestCompareIdentical(t *testing.T) {
	a := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}, "Q2": {2, 8}})
	deltas, err := Compare(a, a, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 { // aggregate + 2 templates
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	if deltas[0].Name != "aggregate" {
		t.Errorf("first delta %q, want aggregate", deltas[0].Name)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("identical reports regressed: %+v", regs)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}, "Q2": {2, 8}})
	cand := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}, "Q2": {2, 20}})
	deltas, err := Compare(base, cand, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range Regressions(deltas) {
		names[d.Name] = true
	}
	if !names["Q2"] {
		t.Errorf("Q2 p95 2.5x not flagged: %+v", deltas)
	}
	if names["Q1"] {
		t.Errorf("unchanged Q1 flagged")
	}
	// The aggregate row moved 8 → 20 too.
	if !names["aggregate"] {
		t.Errorf("aggregate movement not flagged")
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// 0.1ms → 0.3ms is a 200% relative change but under the absolute
	// floor — noise, not regression.
	base := mkReport("lubm", map[string][2]float64{"Q1": {0.1, 0.1}})
	cand := mkReport("lubm", map[string][2]float64{"Q1": {0.3, 0.3}})
	deltas, err := Compare(base, cand, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("sub-floor movement regressed: %+v", regs)
	}
}

func TestCompareThreshold(t *testing.T) {
	// +10% with a 15% threshold: fine. +30%: regression.
	base := mkReport("lubm", map[string][2]float64{"Q1": {10, 50}})
	within := mkReport("lubm", map[string][2]float64{"Q1": {11, 55}})
	beyond := mkReport("lubm", map[string][2]float64{"Q1": {13, 65}})
	deltas, err := Compare(base, within, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("+10%% under a 15%% threshold regressed: %+v", regs)
	}
	deltas, err = Compare(base, beyond, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) == 0 {
		t.Errorf("+30%% under a 15%% threshold not flagged")
	}
}

func TestCompareMixMismatch(t *testing.T) {
	a := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}})
	b := mkReport("watdiv", map[string][2]float64{"Q1": {1, 5}})
	if _, err := Compare(a, b, 0.15); err == nil {
		t.Fatal("different mixes compared without error")
	}
}

func TestCompareMissingTemplate(t *testing.T) {
	base := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}, "Q2": {2, 8}})
	cand := mkReport("lubm", map[string][2]float64{"Q1": {1, 5}})
	deltas, err := Compare(base, cand, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var q2 *Delta
	for i := range deltas {
		if deltas[i].Name == "Q2" {
			q2 = &deltas[i]
		}
	}
	if q2 == nil {
		t.Fatal("template missing from the candidate dropped from the comparison")
	}
	if q2.Regressed {
		t.Error("one-sided template marked regressed")
	}
	if q2.CandSamples != 0 {
		t.Errorf("missing template has %d candidate samples", q2.CandSamples)
	}
}
