package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://localhost:8080". The
	// update stream and the post-run scrape always target it (in a
	// replicated deployment it is the primary, the only writable node).
	BaseURL string
	// BaseURLs, when non-empty, is the read-dispatch list: queries
	// round-robin across these roots — a replica fleet — while BaseURL
	// keeps the writes. Empty sends all traffic to BaseURL.
	BaseURLs []string
	// Mix is the validated query mix to replay.
	Mix *Mix
	// QPS is the target dispatch rate (open loop: the rig ticks at this
	// rate regardless of response latency).
	QPS float64
	// Warmup runs before measurement starts; its requests execute but are
	// not counted. Duration is the measurement window.
	Warmup   time.Duration
	Duration time.Duration
	// Concurrency caps in-flight queries. A tick arriving with every slot
	// busy is counted as Skipped instead of queueing — the rig refuses to
	// hide saturation behind coordinated omission.
	Concurrency int
	// Timeout is the per-query deadline, passed to the server as the
	// timeout= parameter and enforced client-side with headroom.
	Timeout time.Duration
	// Seed drives template selection and parameter substitution; equal
	// seeds give equal request sequences.
	Seed int64
	// ZipfS is the rank-skew exponent of template selection (see Sampler).
	ZipfS float64
	// UpdateInterval is the cadence of the concurrent SPARQL UPDATE
	// stream; 0 disables it. UpdateBatch is triples per INSERT DATA, and
	// UpdateKeep how many batches live before the stream deletes the
	// oldest (so the dataset churns instead of growing without bound).
	UpdateInterval time.Duration
	UpdateBatch    int
	UpdateKeep     int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultUpdateKeep is the update stream's live-batch window.
const DefaultUpdateKeep = 8

// templateStats accumulates one template's outcomes under Runner.mu.
type templateStats struct {
	counts    Counts
	latencies []float64 // ms, OK responses in the measurement window
}

// Run executes one load run against a live server and returns its
// report. The context cancels the run early (the report then covers the
// elapsed part of the measurement window).
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Mix == nil {
		return nil, fmt.Errorf("loadgen: no mix")
	}
	if err := opts.Mix.Validate(); err != nil {
		return nil, err
	}
	if opts.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive QPS %v", opts.QPS)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration %v", opts.Duration)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.UpdateBatch <= 0 {
		opts.UpdateBatch = 50
	}
	if opts.UpdateKeep <= 0 {
		opts.UpdateKeep = DefaultUpdateKeep
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sampler, err := NewSampler(opts.Mix, opts.ZipfS, rng)
	if err != nil {
		return nil, err
	}

	client := &http.Client{
		// Client deadline sits above the server's so 504s arrive as real
		// responses; it only fires when the server itself is wedged.
		Timeout: opts.Timeout + 5*time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Concurrency + 2,
		},
	}

	stats := make([]*templateStats, len(opts.Mix.Templates))
	for i := range stats {
		stats[i] = &templateStats{}
	}
	var mu sync.Mutex

	// Update stream: its own goroutine, its own cadence.
	var updates UpdateReport
	updCtx, updCancel := context.WithCancel(ctx)
	var updWG sync.WaitGroup
	if opts.UpdateInterval > 0 {
		updates.IntervalSeconds = opts.UpdateInterval.Seconds()
		updates.Batch = opts.UpdateBatch
		updWG.Add(1)
		go func() {
			defer updWG.Done()
			runUpdateStream(updCtx, client, opts, &mu, &updates)
		}()
	}

	// Read-dispatch targets: round-robin in dispatch order, so a given
	// seed sends the same request sequence to the same nodes.
	readURLs := opts.BaseURLs
	if len(readURLs) == 0 {
		readURLs = []string{opts.BaseURL}
	}
	nextRead := 0

	sem := make(chan struct{}, opts.Concurrency)
	var reqWG sync.WaitGroup
	interval := time.Duration(float64(time.Second) / opts.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	start := time.Now()
	measureStart := start.Add(opts.Warmup)
	end := measureStart.Add(opts.Duration)
	logf("loadgen: %s mix, %d templates, target %.0f qps, warmup %v, measuring %v",
		opts.Mix.Name, len(opts.Mix.Templates), opts.QPS, opts.Warmup, opts.Duration)

dispatch:
	for {
		select {
		case <-ctx.Done():
			break dispatch
		case now := <-ticker.C:
			if now.After(end) {
				break dispatch
			}
			measured := !now.Before(measureStart)
			idx := sampler.Next()
			query := opts.Mix.Templates[idx].Instantiate(rng)
			base := readURLs[nextRead]
			nextRead = (nextRead + 1) % len(readURLs)
			select {
			case sem <- struct{}{}:
			default:
				if measured {
					mu.Lock()
					stats[idx].counts.Skipped++
					mu.Unlock()
				}
				continue
			}
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer func() { <-sem }()
				outcome, truncated, latency := doQuery(ctx, client, opts, base, query)
				if !measured {
					return
				}
				mu.Lock()
				st := stats[idx]
				st.counts.Requests++
				switch outcome {
				case outcomeOK:
					st.counts.OK++
					if truncated {
						st.counts.Truncated++
					}
					st.latencies = append(st.latencies, float64(latency)/float64(time.Millisecond))
				case outcomeRejected:
					st.counts.Rejected++
				case outcomeTimeout:
					st.counts.Timeouts++
				case outcomeClientError:
					st.counts.ClientErrors++
				case outcomeServerError:
					st.counts.ServerErrors++
				case outcomeTransport:
					st.counts.TransportErrors++
				case outcomeTransportReset:
					st.counts.TransportErrors++
					st.counts.TransportResets++
				case outcomeTransportTimeout:
					st.counts.TransportErrors++
					st.counts.TransportTimeouts++
				case outcomeTransportBody:
					st.counts.TransportErrors++
					st.counts.TransportBody++
				}
				mu.Unlock()
			}()
		}
	}
	measureEnd := time.Now()
	if measureEnd.After(end) {
		measureEnd = end
	}
	reqWG.Wait()
	updCancel()
	updWG.Wait()

	elapsed := measureEnd.Sub(measureStart).Seconds()
	if elapsed <= 0 {
		elapsed = opts.Duration.Seconds()
	}

	r := &Report{
		Schema:          SchemaVersion,
		Mix:             opts.Mix.Name,
		Seed:            opts.Seed,
		ZipfS:           opts.ZipfS,
		Start:           measureStart.UTC().Format(time.RFC3339Nano),
		WarmupSeconds:   opts.Warmup.Seconds(),
		DurationSeconds: opts.Duration.Seconds(),
		TargetQPS:       opts.QPS,
		Concurrency:     opts.Concurrency,
		Updates:         updates,
	}
	var allLat []float64
	for i, t := range opts.Mix.Templates {
		st := stats[i]
		r.Templates = append(r.Templates, TemplateReport{
			Name:    t.Name,
			Counts:  st.counts,
			Latency: summarize(st.latencies),
		})
		r.Counts.Requests += st.counts.Requests
		r.Counts.OK += st.counts.OK
		r.Counts.Truncated += st.counts.Truncated
		r.Counts.Rejected += st.counts.Rejected
		r.Counts.Timeouts += st.counts.Timeouts
		r.Counts.ClientErrors += st.counts.ClientErrors
		r.Counts.ServerErrors += st.counts.ServerErrors
		r.Counts.TransportErrors += st.counts.TransportErrors
		r.Counts.TransportResets += st.counts.TransportResets
		r.Counts.TransportTimeouts += st.counts.TransportTimeouts
		r.Counts.TransportBody += st.counts.TransportBody
		r.Counts.Skipped += st.counts.Skipped
		allLat = append(allLat, st.latencies...)
	}
	r.Latency = summarize(allLat)
	r.AchievedQPS = float64(r.Counts.Requests) / elapsed

	// Post-run scrape: server-side estimate quality. Failures degrade the
	// report rather than failing the run — the server may already be
	// shutting down.
	if err := scrapeServer(ctx, client, opts.BaseURL, r); err != nil {
		logf("loadgen: post-run scrape: %v", err)
	}
	return r, nil
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeRejected
	outcomeTimeout
	outcomeClientError
	outcomeServerError
	// Transport outcomes subclass "failed below HTTP": a reset or torn
	// connection, a client-side deadline, a response body that died
	// mid-read, and the unclassifiable remainder.
	outcomeTransport
	outcomeTransportReset
	outcomeTransportTimeout
	outcomeTransportBody
)

// classifyTransport splits a client.Do failure into the reset/timeout/
// generic subclasses by inspecting the wrapped error chain.
func classifyTransport(err error) outcome {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return outcomeTransportTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return outcomeTransportTimeout
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return outcomeTransportReset
	}
	if s := err.Error(); strings.Contains(s, "connection reset") ||
		strings.Contains(s, "broken pipe") {
		return outcomeTransportReset
	}
	return outcomeTransport
}

// doQuery issues one query against base and classifies the result. The
// body is read fully even on error status so connections are reused.
func doQuery(ctx context.Context, client *http.Client, opts Options, base, query string) (outcome, bool, time.Duration) {
	u := base + "/sparql?query=" + url.QueryEscape(query) +
		"&timeout=" + url.QueryEscape(opts.Timeout.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return outcomeTransport, false, 0
	}
	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return classifyTransport(err), false, 0
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	latency := time.Since(begin)
	// A 200 whose body dies mid-read delivered nothing trustworthy: that
	// is a transport failure, not a success — and before subclassing it
	// was silently miscounted as OK.
	if rerr != nil && resp.StatusCode == http.StatusOK {
		return outcomeTransportBody, false, latency
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var res struct {
			Truncated bool `json:"truncated"`
		}
		_ = json.Unmarshal(body, &res)
		return outcomeOK, res.Truncated, latency
	case resp.StatusCode == http.StatusServiceUnavailable:
		return outcomeRejected, false, latency
	case resp.StatusCode == http.StatusGatewayTimeout:
		return outcomeTimeout, false, latency
	case resp.StatusCode >= 500:
		return outcomeServerError, false, latency
	default:
		return outcomeClientError, false, latency
	}
}

// runUpdateStream POSTs INSERT DATA batches on a fixed cadence, deleting
// the oldest batch once more than opts.UpdateKeep are live. Batch
// contents are deterministic in the batch counter, so update runs are as
// reproducible as query runs.
func runUpdateStream(ctx context.Context, client *http.Client, opts Options, mu *sync.Mutex, rep *UpdateReport) {
	ticker := time.NewTicker(opts.UpdateInterval)
	defer ticker.Stop()
	batch := 0
	var live []int
	post := func(body string) (inserted, deleted int64, err error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/update",
			strings.NewReader("update="+url.QueryEscape(body)))
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		resp, err := client.Do(req)
		if err != nil {
			return 0, 0, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("update: status %d", resp.StatusCode)
		}
		var ack struct {
			Inserted int64 `json:"inserted"`
			Deleted  int64 `json:"deleted"`
		}
		if err := json.Unmarshal(data, &ack); err != nil {
			return 0, 0, err
		}
		return ack.Inserted, ack.Deleted, nil
	}
	record := func(ins, del int64, err error) {
		if err != nil && ctx.Err() != nil {
			return // killed by run teardown, not a server failure
		}
		mu.Lock()
		rep.Requests++
		if err != nil {
			rep.Errors++
		}
		rep.Inserted += ins
		rep.Deleted += del
		mu.Unlock()
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		ins, del, err := post(updateBatchOp("INSERT DATA", batch, opts.UpdateBatch))
		record(ins, del, err)
		if err == nil {
			live = append(live, batch)
		}
		batch++
		if len(live) > opts.UpdateKeep {
			oldest := live[0]
			ins, del, err := post(updateBatchOp("DELETE DATA", oldest, opts.UpdateBatch))
			record(ins, del, err)
			if err == nil {
				live = live[1:]
			}
		}
	}
}

// updateBatchOp builds the INSERT DATA / DELETE DATA operation for batch
// b: n triples under distinct subjects in a reserved namespace, typed so
// they register in the shape statistics.
func updateBatchOp(op string, b, n int) string {
	var sb strings.Builder
	sb.WriteString(op)
	sb.WriteString(" {\n")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&sb, "<http://loadgen.example/b%d/s%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://loadgen.example/Churn> .\n", b, j)
		fmt.Fprintf(&sb, "<http://loadgen.example/b%d/s%d> <http://loadgen.example/batch> \"%d\" .\n", b, j, b)
	}
	sb.WriteString("}")
	return sb.String()
}

// scrapeServer fills the report's QError and AdaptiveReplans fields from
// /metrics and /trace/recent.
func scrapeServer(ctx context.Context, client *http.Client, baseURL string, r *Report) error {
	get := func(path string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	metrics, err := get("/metrics")
	if err != nil {
		return err
	}
	r.QError, r.AdaptiveReplans = scrapeQError(string(metrics))

	traces, err := get("/trace/recent?n=512")
	if err != nil {
		return err
	}
	var tr struct {
		Traces []struct {
			QError    float64 `json:"qerror"`
			TimedOut  bool    `json:"timedOut"`
			LimitHit  bool    `json:"limitHit"`
			Truncated bool    `json:"truncated"`
			Err       string  `json:"error"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(traces, &tr); err != nil {
		return err
	}
	var qes []float64
	for _, t := range tr.Traces {
		// Partial executions observe lower-bound actuals; their q-errors
		// are not estimate-quality evidence.
		if t.TimedOut || t.LimitHit || t.Truncated || t.Err != "" || t.QError <= 0 {
			continue
		}
		qes = append(qes, t.QError)
	}
	if len(qes) > 0 {
		sort.Float64s(qes)
		r.QError.TraceP50 = quantile(qes, 0.50)
		r.QError.TraceP95 = quantile(qes, 0.95)
		r.QError.TraceMax = qes[len(qes)-1]
		r.QError.TraceSamples = len(qes)
	}
	return nil
}
