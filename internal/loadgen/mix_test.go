package loadgen

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMixValidate(t *testing.T) {
	bad := []Mix{
		{Name: "empty"},
		{Name: "noname", Templates: []Template{{Query: "SELECT * WHERE { ?s ?p ?o }"}}},
		{Name: "noquery", Templates: []Template{{Name: "q"}}},
		{Name: "negweight", Templates: []Template{{Name: "q", Query: "SELECT", Weight: -1}}},
		{Name: "undeclared", Templates: []Template{{Name: "q", Query: "SELECT ${x}"}}},
		{Name: "badkind", Templates: []Template{{Name: "q", Query: "SELECT ${x}",
			Params: map[string]Param{"x": {Kind: "float"}}}}},
		{Name: "badrange", Templates: []Template{{Name: "q", Query: "SELECT ${x}",
			Params: map[string]Param{"x": {Kind: "int", Min: 5, Max: 1}}}}},
		{Name: "nochoices", Templates: []Template{{Name: "q", Query: "SELECT ${x}",
			Params: map[string]Param{"x": {Kind: "choice"}}}}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q validated", m.Name)
		}
	}
	good := Mix{Name: "ok", Templates: []Template{{
		Name:  "q",
		Query: "SELECT ?s WHERE { ?s <http://ex/p> ${v} . } LIMIT ${n}",
		Params: map[string]Param{
			"v": {Kind: "choice", Choices: []string{`"a"`, `"b"`}},
			"n": {Kind: "int", Min: 1, Max: 10},
		},
	}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good mix rejected: %v", err)
	}
}

func TestPlaceholders(t *testing.T) {
	got := placeholders("x ${a} y ${b} ${a} ${} z ${c")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("placeholders = %v, want [a b]", got)
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	tmpl := Template{
		Name:  "q",
		Query: "SELECT ?s WHERE { ?s <http://ex/p> ${v} . } LIMIT ${n}",
		Params: map[string]Param{
			"v": {Kind: "choice", Choices: []string{`"a"`, `"b"`, `"c"`}},
			"n": {Kind: "int", Min: 1, Max: 100},
		},
	}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		qa, qb := tmpl.Instantiate(a), tmpl.Instantiate(b)
		if qa != qb {
			t.Fatalf("instance %d diverged under equal seeds:\n%s\n%s", i, qa, qb)
		}
		if strings.Contains(qa, "${") {
			t.Fatalf("unsubstituted placeholder: %s", qa)
		}
	}
}

func TestSamplerDeterministicAndSkewed(t *testing.T) {
	m := &Mix{Name: "m", Templates: []Template{
		{Name: "t0", Query: "SELECT 0", Weight: 1},
		{Name: "t1", Query: "SELECT 1", Weight: 1},
		{Name: "t2", Query: "SELECT 2", Weight: 1},
		{Name: "t3", Query: "SELECT 3", Weight: 1},
	}}

	// Equal seeds draw identical index sequences.
	s1, err := NewSampler(m, 1.0, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSampler(m, 1.0, rand.New(rand.NewSource(42)))
	for i := 0; i < 200; i++ {
		if a, b := s1.Next(), s2.Next(); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}

	// With s=1 and equal weights, expected proportions are 1/(i+1)
	// normalized: 12/25, 6/25, 4/25, 3/25. Check the empirical counts
	// land near them, and that probabilities report the exact values.
	s3, _ := NewSampler(m, 1.0, rand.New(rand.NewSource(7)))
	p := s3.Probabilities()
	want := []float64{12.0 / 25, 6.0 / 25, 4.0 / 25, 3.0 / 25}
	for i := range want {
		if diff := p[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("probability[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	const draws = 20000
	counts := make([]int, len(m.Templates))
	for i := 0; i < draws; i++ {
		counts[s3.Next()]++
	}
	for i, w := range want {
		got := float64(counts[i]) / draws
		if got < w-0.02 || got > w+0.02 {
			t.Errorf("template %d drawn %.3f of the time, want ~%.3f", i, got, w)
		}
	}
	if counts[0] <= counts[3] {
		t.Errorf("rank skew missing: counts = %v", counts)
	}

	// s=0 disables the rank skew: uniform over equal weights.
	s4, _ := NewSampler(m, 0, rand.New(rand.NewSource(7)))
	for i, p := range s4.Probabilities() {
		if p != 0.25 {
			t.Errorf("unskewed probability[%d] = %v, want 0.25", i, p)
		}
	}
}

func TestReadMixFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.json")
	body := `{
		"name": "custom",
		"templates": [
			{"name": "q1", "query": "SELECT ?s WHERE { ?s <http://ex/p> ${v} . }",
			 "weight": 2,
			 "params": {"v": {"kind": "int", "min": 1, "max": 3}}}
		]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "custom" || len(m.Templates) != 1 || m.Templates[0].Weight != 2 {
		t.Errorf("mix = %+v", m)
	}
	if _, err := ReadMixFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"templates": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMixFile(path); err == nil {
		t.Error("invalid mix accepted")
	}
}

func TestBuiltinMixes(t *testing.T) {
	for _, name := range []string{"lubm", "watdiv"} {
		m, err := BuiltinMix(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Every parameterized template must instantiate into concrete
		// SPARQL with no placeholder residue.
		rng := rand.New(rand.NewSource(1))
		params := 0
		for _, tm := range m.Templates {
			if len(tm.Params) > 0 {
				params++
			}
			q := tm.Instantiate(rng)
			if strings.Contains(q, "${") {
				t.Errorf("%s/%s: unsubstituted placeholder in %q", name, tm.Name, q)
			}
		}
		if params == 0 {
			t.Errorf("%s: no parameterized templates", name)
		}
	}
	if _, err := BuiltinMix("nope", 1); err == nil {
		t.Error("unknown mix accepted")
	}
}
