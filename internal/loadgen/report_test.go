package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// validReport builds a minimal report that passes Validate.
func validReport() *Report {
	c := Counts{Requests: 10, OK: 8, Truncated: 1, Rejected: 1, Timeouts: 1}
	l := LatencySummary{Count: 8, MeanMS: 2, P50MS: 1, P95MS: 3, P99MS: 4, MaxMS: 5}
	return &Report{
		Schema:          SchemaVersion,
		Mix:             "lubm",
		Seed:            1,
		Start:           time.Now().UTC().Format(time.RFC3339Nano),
		DurationSeconds: 1,
		TargetQPS:       10,
		AchievedQPS:     9.5,
		Counts:          c,
		Latency:         l,
		Templates:       []TemplateReport{{Name: "Q1", Counts: c, Latency: l}},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := validReport()
	r.QError = QErrorReport{
		Buckets:      map[string]float64{"1.5": 3, "+Inf": 5},
		Count:        5,
		Sum:          12.5,
		TraceP50:     1.1,
		TraceP95:     2.2,
		TraceMax:     3.3,
		TraceSamples: 5,
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Mix != r.Mix || got.Counts != r.Counts || got.Latency != r.Latency ||
		got.QError.TraceP95 != r.QError.TraceP95 || got.QError.Buckets["+Inf"] != 5 {
		t.Errorf("round trip changed the report:\n%+v\n%+v", got, r)
	}
	if err := CheckFile(path); err != nil {
		t.Errorf("CheckFile: %v", err)
	}
}

func TestReportValidateRejects(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":      func(r *Report) { r.Schema = 99 },
		"no mix":            func(r *Report) { r.Mix = "" },
		"bad start":         func(r *Report) { r.Start = "yesterday" },
		"zero duration":     func(r *Report) { r.DurationSeconds = 0 },
		"zero qps":          func(r *Report) { r.TargetQPS = 0 },
		"counts mismatch":   func(r *Report) { r.Counts.OK++ },
		"latency mismatch":  func(r *Report) { r.Latency.Count++ },
		"quantile disorder": func(r *Report) { r.Latency.P95MS = r.Latency.P50MS - 1 },
		"no templates":      func(r *Report) { r.Templates = nil },
		"unnamed template":  func(r *Report) { r.Templates[0].Name = "" },
		"template drift": func(r *Report) {
			r.Templates[0].Counts.Requests++
			r.Templates[0].Counts.OK++
			r.Templates[0].Latency.Count++
		},
		"truncated exceeds ok": func(r *Report) {
			r.Counts.Truncated = r.Counts.OK + 1
			r.Templates[0].Counts.Truncated = r.Templates[0].Counts.OK + 1
		},
		"update errors exceed requests": func(r *Report) { r.Updates.Errors = 1 },
		"transport subclasses exceed total": func(r *Report) {
			r.Counts.TransportResets = 1 // TransportErrors stays 0
		},
		"negative transport subclass": func(r *Report) { r.Counts.TransportBody = -1 },
	}
	for name, mutate := range cases {
		r := validReport()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Errorf("empty dir: %s", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_7.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_8.json" {
		t.Errorf("numbered dir: %s", p)
	}
}

func TestParsePromLine(t *testing.T) {
	name, labels, v, ok := parsePromLine(`rdfshapes_plan_qerror_bucket{planner="SS",le="1.5"} 42`)
	if !ok || name != "rdfshapes_plan_qerror_bucket" || labels["planner"] != "SS" || labels["le"] != "1.5" || v != 42 {
		t.Errorf("parsed %q %v %v %v", name, labels, v, ok)
	}
	// Escaped quotes, braces, and spaces inside label values must not
	// derail the scan — template labels contain all three.
	name, labels, v, ok = parsePromLine(`rdfshapes_adaptive_replans_total{template="?v0 <http://ex/p> \"x\" . { }"} 2`)
	if !ok || name != "rdfshapes_adaptive_replans_total" || v != 2 {
		t.Fatalf("parsed %q %v %v %v", name, labels, v, ok)
	}
	if labels["template"] != `?v0 <http://ex/p> "x" . { }` {
		t.Errorf("label = %q", labels["template"])
	}
	name, _, v, ok = parsePromLine("rdfshapes_queries_total 7")
	if !ok || name != "rdfshapes_queries_total" || v != 7 {
		t.Errorf("bare sample: %q %v %v", name, v, ok)
	}
	for _, line := range []string{"", "# HELP x y", "x", `x{a=b} 1`, "x notanumber"} {
		if _, _, _, ok := parsePromLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestScrapeQError(t *testing.T) {
	metrics := `# HELP rdfshapes_plan_qerror q-error
# TYPE rdfshapes_plan_qerror histogram
rdfshapes_plan_qerror_bucket{planner="SS",le="1.5"} 3
rdfshapes_plan_qerror_bucket{planner="SS",le="+Inf"} 4
rdfshapes_plan_qerror_bucket{planner="GS",le="1.5"} 1
rdfshapes_plan_qerror_bucket{planner="GS",le="+Inf"} 2
rdfshapes_plan_qerror_count{planner="SS"} 4
rdfshapes_plan_qerror_count{planner="GS"} 2
rdfshapes_plan_qerror_sum{planner="SS"} 8
rdfshapes_plan_qerror_sum{planner="GS"} 3
rdfshapes_adaptive_replans_total{template="?v0 a <http://ex/T> ."} 5
`
	q, replans := scrapeQError(metrics)
	if q.Buckets["1.5"] != 4 || q.Buckets["+Inf"] != 6 {
		t.Errorf("buckets = %v", q.Buckets)
	}
	if q.Count != 6 || q.Sum != 11 {
		t.Errorf("count/sum = %v/%v", q.Count, q.Sum)
	}
	if replans != 5 {
		t.Errorf("replans = %v", replans)
	}
}

func TestSummarize(t *testing.T) {
	s := summarize(nil)
	if s.Count != 0 || s.MaxMS != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	s = summarize(ms)
	if s.Count != 100 || s.P50MS != 50 || s.P95MS != 95 || s.P99MS != 99 || s.MaxMS != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanMS != 50.5 {
		t.Errorf("mean = %v", s.MeanMS)
	}
}
