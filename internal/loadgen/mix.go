// Package loadgen is the sustained-load benchmark rig: it replays
// weighted, templated query mixes at a target QPS against a running
// server (cmd/server), optionally interleaved with a SPARQL UPDATE
// stream, and emits a machine-readable BENCH_<n>.json report — the
// repo's perf trajectory format (docs/BENCHMARKING.md).
//
// Template selection is Zipf-skewed: the query-log studies the repo
// tracks (PAPERS.md: "On the Statistical Analysis of Practical SPARQL
// Queries", "An Empirical Study of Real-World SPARQL Queries") show real
// SPARQL traffic is dominated by a small number of templated shapes, so
// the sampler draws template i with weight w_i / (rank_i+1)^s. Sampling,
// parameter substitution, and the update stream are all driven by one
// seeded PRNG, so a run is reproducible given (mix, seed, duration).
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"rdfshapes/internal/workloads"
)

// Param describes one substitutable parameter of a template.
type Param struct {
	// Kind is "int" (uniform integer in [Min, Max]) or "choice" (uniform
	// pick from Choices).
	Kind string `json:"kind"`
	// Min and Max bound "int" parameters, inclusive.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Choices lists the values of a "choice" parameter.
	Choices []string `json:"choices,omitempty"`
}

// Template is one templated query of a mix. Occurrences of ${name} in
// Query are replaced by a fresh draw of the parameter named name on
// every instantiation.
type Template struct {
	// Name labels the template in reports (e.g. "Q2", "S1").
	Name string `json:"name"`
	// Query is the SPARQL text with ${param} placeholders.
	Query string `json:"query"`
	// Weight is the template's relative selection weight before the Zipf
	// rank skew; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Params declares the placeholders used by Query.
	Params map[string]Param `json:"params,omitempty"`
}

// Mix is a named set of weighted templates — the input of a load run.
type Mix struct {
	Name      string     `json:"name"`
	Templates []Template `json:"templates"`
}

// Validate checks the mix is usable: at least one template, every
// template named with non-empty query, weights non-negative, every
// ${placeholder} declared, and every declared parameter well-formed.
func (m *Mix) Validate() error {
	if len(m.Templates) == 0 {
		return fmt.Errorf("loadgen: mix %q has no templates", m.Name)
	}
	for i, t := range m.Templates {
		if t.Name == "" {
			return fmt.Errorf("loadgen: template %d has no name", i)
		}
		if strings.TrimSpace(t.Query) == "" {
			return fmt.Errorf("loadgen: template %q has an empty query", t.Name)
		}
		if t.Weight < 0 {
			return fmt.Errorf("loadgen: template %q has negative weight", t.Name)
		}
		for name, p := range t.Params {
			switch p.Kind {
			case "int":
				if p.Max < p.Min {
					return fmt.Errorf("loadgen: template %q param %q: max < min", t.Name, name)
				}
			case "choice":
				if len(p.Choices) == 0 {
					return fmt.Errorf("loadgen: template %q param %q: no choices", t.Name, name)
				}
			default:
				return fmt.Errorf("loadgen: template %q param %q: unknown kind %q (want int or choice)", t.Name, name, p.Kind)
			}
		}
		for _, ph := range placeholders(t.Query) {
			if _, ok := t.Params[ph]; !ok {
				return fmt.Errorf("loadgen: template %q uses ${%s} but does not declare it", t.Name, ph)
			}
		}
	}
	return nil
}

// placeholders returns the distinct ${name} placeholders of a query in
// first-use order.
func placeholders(query string) []string {
	var out []string
	seen := map[string]bool{}
	for i := 0; i+1 < len(query); i++ {
		if query[i] != '$' || query[i+1] != '{' {
			continue
		}
		end := strings.IndexByte(query[i+2:], '}')
		if end < 0 {
			break
		}
		name := query[i+2 : i+2+end]
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
		i += 2 + end
	}
	return out
}

// Instantiate substitutes every placeholder of template t with a fresh
// draw from rng.
func (t Template) Instantiate(rng *rand.Rand) string {
	if len(t.Params) == 0 {
		return t.Query
	}
	q := t.Query
	for _, name := range placeholders(t.Query) {
		p := t.Params[name]
		var v string
		switch p.Kind {
		case "int":
			v = strconv.Itoa(p.Min + rng.Intn(p.Max-p.Min+1))
		case "choice":
			v = p.Choices[rng.Intn(len(p.Choices))]
		}
		q = strings.ReplaceAll(q, "${"+name+"}", v)
	}
	return q
}

// ReadMixFile loads and validates a JSON mix file (docs/BENCHMARKING.md
// documents the format).
func ReadMixFile(path string) (*Mix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Mix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("loadgen: parsing mix %s: %w", path, err)
	}
	if m.Name == "" {
		m.Name = path
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// BuiltinMix returns the named built-in mix: "lubm" or "watdiv",
// parameterized from the paper workloads in internal/workloads. scale is
// the generator scale of the dataset the server holds (cmd/server
// -scale), bounding the entity index parameter spaces.
func BuiltinMix(name string, scale int) (*Mix, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "lubm":
		return lubmMix(scale), nil
	case "watdiv":
		return watdivMix(), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown built-in mix %q (want lubm or watdiv)", name)
	}
}

// lubmMix templates the LUBM workload. The point-lookup queries (Q4, Q8,
// Q12) carry university/department constants in the generator's IRI
// scheme; those are parameterized so repeated instances hit different
// entities, the way a templated query log would. Every university has at
// least 12 departments, so the dept index space is always valid.
func lubmMix(scale int) *Mix {
	uParam := Param{Kind: "int", Min: 0, Max: scale - 1}
	dParam := Param{Kind: "int", Min: 0, Max: 11}
	m := &Mix{Name: "lubm"}
	for _, q := range workloads.LUBM() {
		t := Template{Name: q.Name, Query: q.Text, Weight: 1}
		switch q.Name {
		case "Q4":
			t.Query = strings.ReplaceAll(t.Query,
				"<http://www.lubm.example/U0/Dept0>",
				"<http://www.lubm.example/U${u}/Dept${d}>")
			t.Params = map[string]Param{"u": uParam, "d": dParam}
		case "Q8", "Q12":
			t.Query = strings.ReplaceAll(t.Query,
				"<http://www.lubm.example/University0>",
				"<http://www.lubm.example/University${u}>")
			t.Params = map[string]Param{"u": uParam}
		}
		m.Templates = append(m.Templates, t)
	}
	return m
}

// watdivMix templates the WatDiv workload; C2's rating constant is
// parameterized over the generator's 1..5 rating range.
func watdivMix() *Mix {
	m := &Mix{Name: "watdiv"}
	for _, q := range workloads.WatDiv() {
		t := Template{Name: q.Name, Query: q.Text, Weight: 1}
		if q.Name == "C2" {
			t.Query = strings.ReplaceAll(t.Query, "wsdbm:rating 5", "wsdbm:rating ${r}")
			t.Params = map[string]Param{"r": {Kind: "int", Min: 1, Max: 5}}
		}
		m.Templates = append(m.Templates, t)
	}
	return m
}

// Sampler draws template indices with Zipf-skewed weighted sampling:
// template i (0-based rank in mix order) is drawn with probability
// proportional to Weight_i / (i+1)^s. s = 0 disables the rank skew.
type Sampler struct {
	rng *rand.Rand
	cum []float64 // cumulative effective weights
}

// NewSampler builds a sampler over the mix with Zipf exponent s, driven
// by rng (which the caller seeds for reproducibility).
func NewSampler(m *Mix, s float64, rng *rand.Rand) (*Sampler, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if s < 0 {
		return nil, fmt.Errorf("loadgen: negative zipf exponent %v", s)
	}
	cum := make([]float64, len(m.Templates))
	total := 0.0
	for i, t := range m.Templates {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		w /= math.Pow(float64(i+1), s)
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix %q has zero total weight", m.Name)
	}
	return &Sampler{rng: rng, cum: cum}, nil
}

// Next draws the next template index.
func (s *Sampler) Next() int {
	x := s.rng.Float64() * s.cum[len(s.cum)-1]
	for i, c := range s.cum {
		if x < c {
			return i
		}
	}
	return len(s.cum) - 1
}

// Probabilities returns each template's selection probability, for tests
// and report metadata.
func (s *Sampler) Probabilities() []float64 {
	out := make([]float64, len(s.cum))
	prev := 0.0
	total := s.cum[len(s.cum)-1]
	for i, c := range s.cum {
		out[i] = (c - prev) / total
		prev = c
	}
	return out
}
