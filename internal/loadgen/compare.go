package loadgen

import (
	"fmt"
	"math"
)

// Comparing BENCH reports: `loadgen -compare A.json B.json` diffs two
// points of the perf trajectory — per-template and aggregate p50/p95
// movement from a baseline report to a candidate — and fails (non-zero
// exit) when a latency regression exceeds the noise threshold. CI uses
// it to keep committed BENCH files honest; docs/BENCHMARKING.md has the
// methodology.

// MinCompareMS is the absolute regression floor in milliseconds:
// quantile movement below it is scheduler noise regardless of its
// relative size, so it never counts as a regression.
const MinCompareMS = 0.5

// MinGateSamples is the per-template sample floor for gating: a p95
// estimated from fewer OK requests is an extreme order statistic whose
// run-to-run spread dwarfs any honest noise threshold (tail templates
// of a Zipf mix flip ±50% between identical runs), so such rows are
// reported but never marked Regressed. The aggregate row gates
// regardless — it pools every template's samples and is the number the
// perf trajectory is judged on.
const MinGateSamples = 100

// Delta is one row of a report comparison: the latency movement of a
// template (or the "aggregate" pseudo-template) between the baseline
// and candidate reports.
type Delta struct {
	// Name is the template name, or "aggregate" for the whole-run row.
	Name string
	// BaseP50/BaseP95 and CandP50/CandP95 are the two reports' quantiles
	// in milliseconds.
	BaseP50, CandP50 float64
	BaseP95, CandP95 float64
	// P50Pct and P95Pct are the relative changes in percent (positive =
	// slower in the candidate). Zero baselines yield 0 when the
	// candidate is also zero and +Inf otherwise.
	P50Pct, P95Pct float64
	// Samples are the OK-request counts the quantiles are computed over.
	BaseSamples, CandSamples int64
	// Regressed marks a delta beyond the noise threshold (relative
	// change past the threshold AND absolute change past MinCompareMS,
	// on either quantile).
	Regressed bool
}

// pctChange returns the relative change from base to cand in percent.
func pctChange(base, cand float64) float64 {
	if base == 0 {
		if cand == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cand - base) / base * 100
}

// exceeds reports whether the base→cand movement is a regression beyond
// the noise threshold (a fraction: 0.15 = +15%).
func exceeds(base, cand, noise float64) bool {
	return cand-base > MinCompareMS && cand > base*(1+noise)
}

// Compare diffs the candidate report against the baseline: one Delta
// per template present in either report (aggregate first), with
// regressions marked per the noise threshold. Templates missing from
// one side, or without OK samples on both sides, are reported with the
// available numbers but never marked regressed — there is nothing sound
// to compare. Reports from different mixes are an error: their template
// populations are incomparable.
func Compare(base, cand *Report, noise float64) ([]Delta, error) {
	if noise < 0 {
		return nil, fmt.Errorf("loadgen: negative noise threshold %v", noise)
	}
	if base.Mix != cand.Mix {
		return nil, fmt.Errorf("loadgen: comparing different mixes (%q vs %q)", base.Mix, cand.Mix)
	}
	mk := func(name string, b, c LatencySummary) Delta {
		d := Delta{
			Name:        name,
			BaseP50:     b.P50MS,
			CandP50:     c.P50MS,
			BaseP95:     b.P95MS,
			CandP95:     c.P95MS,
			P50Pct:      pctChange(b.P50MS, c.P50MS),
			P95Pct:      pctChange(b.P95MS, c.P95MS),
			BaseSamples: b.Count,
			CandSamples: c.Count,
		}
		gate := b.Count >= MinGateSamples && c.Count >= MinGateSamples
		if name == "aggregate" {
			gate = b.Count > 0 && c.Count > 0
		}
		if gate {
			d.Regressed = exceeds(b.P50MS, c.P50MS, noise) || exceeds(b.P95MS, c.P95MS, noise)
		}
		return d
	}
	out := []Delta{mk("aggregate", base.Latency, cand.Latency)}
	baseByName := map[string]TemplateReport{}
	for _, t := range base.Templates {
		baseByName[t.Name] = t
	}
	seen := map[string]bool{}
	for _, c := range cand.Templates {
		seen[c.Name] = true
		out = append(out, mk(c.Name, baseByName[c.Name].Latency, c.Latency))
	}
	for _, b := range base.Templates {
		if !seen[b.Name] {
			out = append(out, mk(b.Name, b.Latency, LatencySummary{}))
		}
	}
	return out, nil
}

// CompareFiles loads, validates, and compares two BENCH files.
func CompareFiles(basePath, candPath string, noise float64) ([]Delta, error) {
	if err := CheckFile(basePath); err != nil {
		return nil, err
	}
	if err := CheckFile(candPath); err != nil {
		return nil, err
	}
	base, err := ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	cand, err := ReadFile(candPath)
	if err != nil {
		return nil, err
	}
	return Compare(base, cand, noise)
}

// Regressions filters a comparison down to the regressed rows.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
