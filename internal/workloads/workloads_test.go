package workloads

import (
	"testing"

	"rdfshapes/internal/sparql"
)

func TestAllQueriesParse(t *testing.T) {
	for _, ws := range map[string][]Query{"LUBM": LUBM(), "WatDiv": WatDiv(), "YAGO": YAGO()} {
		for _, q := range ws {
			parsed, err := q.Parse()
			if err != nil {
				t.Errorf("%s: %v", q.Name, err)
				continue
			}
			if len(parsed.Patterns) < 2 {
				t.Errorf("%s: only %d patterns; workload queries must join", q.Name, len(parsed.Patterns))
			}
		}
	}
}

func TestWorkloadSizes(t *testing.T) {
	// category mix per the paper: LUBM 5 standard + C/F/S totalling 26;
	// WatDiv 3C/5F/7S; YAGO 13 handcrafted
	count := func(ws []Query, cat string) int {
		n := 0
		for _, q := range ws {
			if q.Category == cat {
				n++
			}
		}
		return n
	}
	l := LUBM()
	if len(l) != 26 {
		t.Errorf("LUBM has %d queries, want 26", len(l))
	}
	if count(l, "Q") != 5 {
		t.Errorf("LUBM standard queries = %d, want 5", count(l, "Q"))
	}
	w := WatDiv()
	if count(w, "C") != 3 || count(w, "F") != 5 || count(w, "S") != 7 {
		t.Errorf("WatDiv mix = %d/%d/%d, want 3/5/7", count(w, "C"), count(w, "F"), count(w, "S"))
	}
	y := YAGO()
	if len(y) != 13 {
		t.Errorf("YAGO has %d queries, want 13", len(y))
	}
}

func TestCategoriesShapeDiscipline(t *testing.T) {
	// star queries must share one subject variable across all patterns
	for _, ws := range [][]Query{LUBM(), WatDiv(), YAGO()} {
		for _, q := range ws {
			if q.Category != "S" {
				continue
			}
			parsed, err := q.Parse()
			if err != nil {
				t.Fatal(err)
			}
			subject := ""
			for _, tp := range parsed.Patterns {
				if !tp.S.IsVar() {
					t.Errorf("%s: star query with bound subject", q.Name)
					continue
				}
				if subject == "" {
					subject = tp.S.Var
				} else if tp.S.Var != subject {
					t.Errorf("%s: star query uses subjects %q and %q", q.Name, subject, tp.S.Var)
				}
			}
		}
	}
}

func TestComplexAndSnowflakeAreConnected(t *testing.T) {
	// every non-star query must form one connected component: shuffled
	// execution would otherwise always pay Cartesian products
	for _, ws := range [][]Query{LUBM(), WatDiv(), YAGO()} {
		for _, q := range ws {
			parsed, err := q.Parse()
			if err != nil {
				t.Fatal(err)
			}
			if !connected(parsed) {
				t.Errorf("%s (%s) is not connected", q.Name, q.Category)
			}
		}
	}
}

func connected(q *sparql.Query) bool {
	n := len(q.Patterns)
	if n == 0 {
		return true
	}
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i < n; i++ {
			if !visited[i] && len(sparql.Joins(q.Patterns[cur], q.Patterns[i])) > 0 {
				visited[i] = true
				seen++
				queue = append(queue, i)
			}
		}
	}
	return seen == n
}

func TestByName(t *testing.T) {
	l := LUBM()
	q, ok := ByName(l, "C0")
	if !ok || q.Name != "C0" {
		t.Errorf("ByName(C0) = %+v, %v", q, ok)
	}
	if _, ok := ByName(l, "Z9"); ok {
		t.Error("ByName found a nonexistent query")
	}
}

func TestOrderingGroupsByCategory(t *testing.T) {
	l := LUBM()
	lastRank := -1
	for _, q := range l {
		r := categoryRank(q.Category)
		if r < lastRank {
			t.Fatalf("queries not grouped: %s after rank %d", q.Name, lastRank)
		}
		lastRank = r
	}
	if l[0].Name != "Q2" {
		t.Errorf("first query = %s, want Q2", l[0].Name)
	}
}

func TestC0IsThePaperExampleQuery(t *testing.T) {
	q, ok := ByName(LUBM(), "C0")
	if !ok {
		t.Fatal("C0 missing")
	}
	parsed, err := q.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Patterns) != 9 {
		t.Errorf("C0 has %d patterns, want the paper's 9", len(parsed.Patterns))
	}
}

func TestExtendedWorkloadParses(t *testing.T) {
	qs := LUBMExtended()
	if len(qs) != 6 {
		t.Fatalf("extended queries = %d", len(qs))
	}
	features := 0
	for _, q := range qs {
		parsed, err := q.Parse()
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		if len(parsed.Filters) > 0 || len(parsed.Optionals) > 0 ||
			len(parsed.UnionGroups) > 0 || len(parsed.OrderBy) > 0 {
			features++
		}
		if q.Category != "X" {
			t.Errorf("%s: category %q", q.Name, q.Category)
		}
	}
	if features < 4 {
		t.Errorf("only %d extended queries use operators", features)
	}
}
