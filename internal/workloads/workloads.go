// Package workloads defines the benchmark query sets of the paper's
// evaluation, adapted to the generated datasets:
//
//   - LUBM: the five selected standard queries (Q2, Q4, Q8, Q9, Q12) plus
//     handcrafted complex (C), snowflake (F), and star (S) queries — 26
//     in total, matching the query-count breakdown of Figure 4c. C0 is
//     the paper's 9-pattern example query Q from Table 2.
//   - WatDiv: 3 C + 5 F + 7 S queries, the benchmark's category mix.
//   - YAGO: 13 handcrafted queries following the C/F/S patterns, as the
//     paper does for YAGO-4.
//
// Every query is plain SPARQL text exercised through the parser.
package workloads

import (
	"sort"
	"strings"

	"rdfshapes/internal/sparql"
)

// Query is one benchmark query.
type Query struct {
	// Name is the paper-style label (Q2, C0, F3, S1, ...).
	Name string
	// Category is "Q" (standard), "C" (complex), "F" (snowflake), or
	// "S" (star), derived from the name.
	Category string
	// Text is the SPARQL source.
	Text string
}

// Parse returns the parsed form of the query.
func (q Query) Parse() (*sparql.Query, error) { return sparql.Parse(q.Text) }

func mk(name, text string) Query {
	return Query{Name: name, Category: name[:1], Text: text}
}

const lubmPrefix = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"

// LUBM returns the LUBM workload sorted by category then name.
func LUBM() []Query {
	qs := []Query{
		mk("Q2", lubmPrefix+`SELECT ?x ?y ?z WHERE {
			?x a ub:GraduateStudent .
			?y a ub:University .
			?z a ub:Department .
			?x ub:memberOf ?z .
			?z ub:subOrganizationOf ?y .
			?x ub:undergraduateDegreeFrom ?y .
		}`),
		mk("Q4", lubmPrefix+`SELECT ?x ?n ?e ?t WHERE {
			?x a ub:FullProfessor .
			?x ub:worksFor <http://www.lubm.example/U0/Dept0> .
			?x ub:name ?n .
			?x ub:emailAddress ?e .
			?x ub:telephone ?t .
		}`),
		mk("Q8", lubmPrefix+`SELECT ?x ?y ?e WHERE {
			?x a ub:UndergraduateStudent .
			?y a ub:Department .
			?x ub:memberOf ?y .
			?y ub:subOrganizationOf <http://www.lubm.example/University0> .
			?x ub:emailAddress ?e .
		}`),
		mk("Q9", lubmPrefix+`SELECT ?x ?y ?z WHERE {
			?x a ub:GraduateStudent .
			?y a ub:FullProfessor .
			?z a ub:GraduateCourse .
			?x ub:advisor ?y .
			?y ub:teacherOf ?z .
			?x ub:takesCourse ?z .
		}`),
		mk("Q12", lubmPrefix+`SELECT ?x ?y WHERE {
			?x a ub:FullProfessor .
			?x ub:headOf ?y .
			?y a ub:Department .
			?y ub:subOrganizationOf <http://www.lubm.example/University0> .
		}`),
		// C0 is the paper's example query Q (Table 2, Figure 2).
		mk("C0", lubmPrefix+`SELECT * WHERE {
			?A a ub:FullProfessor .
			?A ub:name ?N .
			?A ub:teacherOf ?C .
			?C a ub:GraduateCourse .
			?X ub:advisor ?A .
			?X a ub:GraduateStudent .
			?X ub:degreeFrom ?U .
			?Y ub:takesCourse ?C .
			?Y a ub:GraduateStudent .
		}`),
		mk("C1", lubmPrefix+`SELECT * WHERE {
			?p a ub:FullProfessor .
			?p ub:worksFor ?d .
			?d ub:subOrganizationOf ?u .
			?pub ub:publicationAuthor ?p .
			?pub a ub:Publication .
			?s ub:advisor ?p .
			?s a ub:GraduateStudent .
			?s ub:takesCourse ?c .
			?c a ub:GraduateCourse .
		}`),
		mk("C2", lubmPrefix+`SELECT * WHERE {
			?s a ub:GraduateStudent .
			?s ub:degreeFrom ?u .
			?u a ub:University .
			?s ub:memberOf ?d .
			?d a ub:Department .
			?d ub:subOrganizationOf ?u2 .
			?u2 a ub:University .
			?s ub:takesCourse ?c .
		}`),
		mk("C3", lubmPrefix+`SELECT * WHERE {
			?g a ub:ResearchGroup .
			?g ub:subOrganizationOf ?d .
			?d a ub:Department .
			?h ub:headOf ?d .
			?h a ub:FullProfessor .
			?h ub:researchInterest ?ri .
			?h ub:degreeFrom ?u .
		}`),
		mk("C4", lubmPrefix+`SELECT * WHERE {
			?pub a ub:Publication .
			?pub ub:publicationAuthor ?p .
			?p a ub:FullProfessor .
			?pub ub:publicationAuthor ?s .
			?s a ub:GraduateStudent .
			?s ub:advisor ?p2 .
			?p2 a ub:AssociateProfessor .
		}`),
		mk("C5", lubmPrefix+`SELECT * WHERE {
			?t a ub:AssociateProfessor .
			?t ub:teacherOf ?c .
			?c a ub:Course .
			?x ub:takesCourse ?c .
			?x a ub:UndergraduateStudent .
			?x ub:memberOf ?d .
			?t ub:worksFor ?d .
		}`),
		mk("F1", lubmPrefix+`SELECT * WHERE {
			?p a ub:FullProfessor .
			?p ub:name ?n .
			?p ub:emailAddress ?e .
			?p ub:teacherOf ?c .
			?c a ub:GraduateCourse .
			?c ub:name ?cn .
			?s ub:takesCourse ?c .
			?s a ub:GraduateStudent .
			?s ub:name ?sn .
		}`),
		mk("F2", lubmPrefix+`SELECT * WHERE {
			?d a ub:Department .
			?d ub:name ?dn .
			?d ub:subOrganizationOf ?u .
			?u a ub:University .
			?u ub:name ?un .
			?p ub:worksFor ?d .
			?p a ub:AssistantProfessor .
			?p ub:researchInterest ?ri .
		}`),
		mk("F3", lubmPrefix+`SELECT * WHERE {
			?s a ub:GraduateStudent .
			?s ub:name ?sn .
			?s ub:emailAddress ?se .
			?s ub:advisor ?a .
			?a a ub:FullProfessor .
			?a ub:name ?an .
			?a ub:telephone ?at .
		}`),
		mk("F4", lubmPrefix+`SELECT * WHERE {
			?pub a ub:Publication .
			?pub ub:name ?pn .
			?pub ub:publicationAuthor ?a .
			?a a ub:AssistantProfessor .
			?a ub:worksFor ?d .
			?d a ub:Department .
			?d ub:name ?dn .
		}`),
		mk("F5", lubmPrefix+`SELECT * WHERE {
			?x a ub:UndergraduateStudent .
			?x ub:takesCourse ?c .
			?c a ub:Course .
			?c ub:name ?cn .
			?t ub:teacherOf ?c .
			?t a ub:Lecturer .
			?t ub:name ?tn .
		}`),
		mk("F6", lubmPrefix+`SELECT * WHERE {
			?s a ub:GraduateStudent .
			?s ub:undergraduateDegreeFrom ?u .
			?u a ub:University .
			?u ub:name ?un .
			?s ub:memberOf ?d .
			?d a ub:Department .
			?d ub:name ?dn .
		}`),
		mk("F7", lubmPrefix+`SELECT * WHERE {
			?g a ub:ResearchGroup .
			?g ub:subOrganizationOf ?d .
			?d a ub:Department .
			?d ub:name ?dn .
			?p ub:worksFor ?d .
			?p a ub:FullProfessor .
			?p ub:researchInterest ?ri .
		}`),
		mk("F8", lubmPrefix+`SELECT * WHERE {
			?c a ub:GraduateCourse .
			?c ub:name ?cn .
			?s ub:takesCourse ?c .
			?s a ub:GraduateStudent .
			?s ub:advisor ?a .
			?a a ub:AssociateProfessor .
			?a ub:name ?an .
		}`),
		mk("S1", lubmPrefix+`SELECT * WHERE {
			?x a ub:FullProfessor .
			?x ub:name ?n .
			?x ub:emailAddress ?e .
			?x ub:telephone ?t .
			?x ub:researchInterest ?r .
		}`),
		mk("S2", lubmPrefix+`SELECT * WHERE {
			?x a ub:GraduateStudent .
			?x ub:name ?n .
			?x ub:advisor ?a .
			?x ub:takesCourse ?c .
			?x ub:memberOf ?d .
		}`),
		mk("S3", lubmPrefix+`SELECT * WHERE {
			?x a ub:UndergraduateStudent .
			?x ub:name ?n .
			?x ub:takesCourse ?c .
			?x ub:emailAddress ?e .
		}`),
		mk("S4", lubmPrefix+`SELECT * WHERE {
			?x a ub:Department .
			?x ub:name ?n .
			?x ub:subOrganizationOf ?u .
		}`),
		mk("S5", lubmPrefix+`SELECT * WHERE {
			?x a ub:AssociateProfessor .
			?x ub:teacherOf ?c .
			?x ub:degreeFrom ?u .
			?x ub:name ?n .
		}`),
		mk("S6", lubmPrefix+`SELECT * WHERE {
			?x a ub:Publication .
			?x ub:name ?n .
			?x ub:publicationAuthor ?a .
		}`),
		mk("S7", lubmPrefix+`SELECT * WHERE {
			?x a ub:GraduateStudent .
			?x ub:undergraduateDegreeFrom ?u .
			?x ub:degreeFrom ?u2 .
			?x ub:emailAddress ?e .
		}`),
	}
	sortQueries(qs)
	return qs
}

const watdivPrefix = "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>\n"

// WatDiv returns the WatDiv workload (3 C, 5 F, 7 S).
func WatDiv() []Query {
	qs := []Query{
		mk("C1", watdivPrefix+`SELECT * WHERE {
			?u a wsdbm:User .
			?u wsdbm:follows ?v .
			?v a wsdbm:User .
			?v wsdbm:makesReview ?r .
			?r wsdbm:reviewFor ?p .
			?p a wsdbm:Movie .
			?u wsdbm:likes ?p .
			?p wsdbm:hasGenre ?g .
		}`),
		mk("C2", watdivPrefix+`SELECT * WHERE {
			?o a wsdbm:Offer .
			?o wsdbm:offerFor ?p .
			?p a wsdbm:Book .
			?o wsdbm:offeredBy ?ret .
			?ret a wsdbm:Retailer .
			?ret wsdbm:locatedIn ?c .
			?r wsdbm:reviewFor ?p .
			?r wsdbm:rating 5 .
		}`),
		mk("C3", watdivPrefix+`SELECT * WHERE {
			?u a wsdbm:User .
			?u wsdbm:locatedIn ?c .
			?u wsdbm:follows ?v .
			?v wsdbm:follows ?w .
			?w a wsdbm:User .
			?w wsdbm:likes ?p .
			?p a wsdbm:Product .
		}`),
		mk("F1", watdivPrefix+`SELECT * WHERE {
			?p a wsdbm:Movie .
			?p wsdbm:label ?l .
			?p wsdbm:duration ?dur .
			?p wsdbm:hasGenre ?g .
			?g wsdbm:label ?gl .
			?r wsdbm:reviewFor ?p .
			?r wsdbm:rating ?rt .
		}`),
		mk("F2", watdivPrefix+`SELECT * WHERE {
			?o a wsdbm:Offer .
			?o wsdbm:price ?pr .
			?o wsdbm:offerFor ?p .
			?p a wsdbm:Album .
			?p wsdbm:artist ?a .
			?o wsdbm:offeredBy ?ret .
			?ret wsdbm:locatedIn ?c .
		}`),
		mk("F3", watdivPrefix+`SELECT * WHERE {
			?u a wsdbm:User .
			?u wsdbm:label ?ul .
			?u wsdbm:makesReview ?r .
			?r a wsdbm:Review .
			?r wsdbm:rating ?rt .
			?r wsdbm:reviewFor ?p .
			?p wsdbm:label ?pl .
		}`),
		mk("F4", watdivPrefix+`SELECT * WHERE {
			?p a wsdbm:Book .
			?p wsdbm:numPages ?n .
			?p wsdbm:label ?l .
			?o wsdbm:offerFor ?p .
			?o wsdbm:price ?pr .
			?o wsdbm:offeredBy ?ret .
			?ret wsdbm:homepage ?h .
		}`),
		mk("F5", watdivPrefix+`SELECT * WHERE {
			?p a wsdbm:Movie .
			?p wsdbm:hasGenre ?g .
			?p2 wsdbm:hasGenre ?g .
			?p2 a wsdbm:Album .
			?p2 wsdbm:artist ?a .
			?g wsdbm:label ?gl .
		}`),
		mk("S1", watdivPrefix+`SELECT * WHERE {
			?p a wsdbm:Movie .
			?p wsdbm:label ?l .
			?p wsdbm:duration ?d .
			?p wsdbm:hasGenre ?g .
		}`),
		mk("S2", watdivPrefix+`SELECT * WHERE {
			?u a wsdbm:User .
			?u wsdbm:label ?l .
			?u wsdbm:locatedIn ?c .
			?u wsdbm:likes ?p .
		}`),
		mk("S3", watdivPrefix+`SELECT * WHERE {
			?r a wsdbm:Review .
			?r wsdbm:rating ?rt .
			?r wsdbm:text ?t .
			?r wsdbm:reviewFor ?p .
		}`),
		mk("S4", watdivPrefix+`SELECT * WHERE {
			?o a wsdbm:Offer .
			?o wsdbm:price ?p .
			?o wsdbm:offerFor ?pr .
			?o wsdbm:offeredBy ?r .
		}`),
		mk("S5", watdivPrefix+`SELECT * WHERE {
			?p a wsdbm:Book .
			?p wsdbm:numPages ?n .
			?p wsdbm:label ?l .
		}`),
		mk("S6", watdivPrefix+`SELECT * WHERE {
			?ret a wsdbm:Retailer .
			?ret wsdbm:label ?l .
			?ret wsdbm:locatedIn ?c .
			?ret wsdbm:homepage ?h .
		}`),
		mk("S7", watdivPrefix+`SELECT * WHERE {
			?u a wsdbm:User .
			?u wsdbm:follows ?v .
			?u wsdbm:makesReview ?r .
			?u wsdbm:label ?l .
		}`),
	}
	sortQueries(qs)
	return qs
}

const yagoPrefix = "PREFIX schema: <http://schema.org/>\nPREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"

// YAGO returns the 13 handcrafted YAGO queries (3 C, 5 F, 5 S).
func YAGO() []Query {
	qs := []Query{
		mk("C1", yagoPrefix+`SELECT * WHERE {
			?a a schema:Actor .
			?a schema:actorIn ?m .
			?m a schema:Movie .
			?m schema:director ?d .
			?d schema:birthPlace ?c .
			?c a schema:City .
			?c schema:containedInPlace ?co .
		}`),
		mk("C2", yagoPrefix+`SELECT * WHERE {
			?s a schema:Scientist .
			?s schema:worksFor ?u .
			?u a schema:University .
			?u schema:containedInPlace ?city .
			?city schema:containedInPlace ?country .
			?s schema:birthPlace ?bc .
			?bc a schema:City .
		}`),
		mk("C3", yagoPrefix+`SELECT * WHERE {
			?p a schema:Politician .
			?p schema:memberOf ?o .
			?o a schema:Organization .
			?o schema:founder ?f .
			?f a schema:Person .
			?f schema:birthPlace ?c .
		}`),
		mk("F1", yagoPrefix+`SELECT * WHERE {
			?m a schema:Movie .
			?m rdfs:label ?l .
			?m schema:director ?d .
			?d a schema:Person .
			?d schema:birthPlace ?c .
			?c schema:population ?pop .
		}`),
		mk("F2", yagoPrefix+`SELECT * WHERE {
			?p a schema:Person .
			?p schema:birthPlace ?c .
			?c a schema:City .
			?c schema:containedInPlace ?co .
			?co a schema:Country .
			?p schema:nationality ?co2 .
		}`),
		mk("F3", yagoPrefix+`SELECT * WHERE {
			?u a schema:University .
			?u rdfs:label ?ul .
			?u schema:containedInPlace ?c .
			?s schema:alumniOf ?u .
			?s a schema:Person .
			?s schema:birthDate ?bd .
		}`),
		mk("F4", yagoPrefix+`SELECT * WHERE {
			?b a schema:Book .
			?b schema:author ?a .
			?a a schema:Person .
			?a schema:birthPlace ?c .
			?c a schema:City .
			?c schema:containedInPlace ?co .
		}`),
		mk("F5", yagoPrefix+`SELECT * WHERE {
			?p a schema:Actor .
			?p schema:award ?aw .
			?p schema:actorIn ?m .
			?m a schema:Movie .
			?m rdfs:label ?ml .
		}`),
		mk("S1", yagoPrefix+`SELECT * WHERE {
			?p a schema:Person .
			?p rdfs:label ?l .
			?p schema:birthPlace ?c .
			?p schema:birthDate ?d .
		}`),
		mk("S2", yagoPrefix+`SELECT * WHERE {
			?c a schema:City .
			?c rdfs:label ?l .
			?c schema:population ?pop .
			?c schema:containedInPlace ?co .
		}`),
		mk("S3", yagoPrefix+`SELECT * WHERE {
			?s a schema:Scientist .
			?s schema:worksFor ?u .
			?s schema:alumniOf ?u2 .
			?s rdfs:label ?l .
		}`),
		mk("S4", yagoPrefix+`SELECT * WHERE {
			?o a schema:Organization .
			?o rdfs:label ?l .
			?o schema:containedInPlace ?c .
			?o schema:founder ?f .
		}`),
		mk("S5", yagoPrefix+`SELECT * WHERE {
			?m a schema:Movie .
			?m rdfs:label ?l .
			?m schema:director ?d .
		}`),
	}
	sortQueries(qs)
	return qs
}

// ByName finds a query by name in a workload, or returns false.
func ByName(ws []Query, name string) (Query, bool) {
	for _, q := range ws {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}

// categoryRank orders the display: standard queries, complex, snowflake,
// star — the grouping of the paper's figures.
func categoryRank(c string) int {
	switch c {
	case "Q":
		return 0
	case "C":
		return 1
	case "F":
		return 2
	case "S":
		return 3
	default:
		return 4
	}
}

func sortQueries(qs []Query) {
	sort.Slice(qs, func(i, j int) bool {
		if r1, r2 := categoryRank(qs[i].Category), categoryRank(qs[j].Category); r1 != r2 {
			return r1 < r2
		}
		// numeric-aware name ordering: Q2 < Q12
		n1, n2 := qs[i].Name, qs[j].Name
		if len(n1) != len(n2) {
			return len(n1) < len(n2)
		}
		return strings.Compare(n1, n2) < 0
	})
}

// LUBMExtended returns queries exercising the operators beyond the
// paper's conjunctive BGPs — FILTER, OPTIONAL, UNION, property paths,
// and COUNT — used by the extended-operators benchmark. Names carry an
// "X" prefix to keep them apart from the paper workload.
func LUBMExtended() []Query {
	mkx := func(name, text string) Query {
		return Query{Name: name, Category: "X", Text: text}
	}
	return []Query{
		mkx("X1-filter", lubmPrefix+`SELECT * WHERE {
			?x a ub:GraduateStudent .
			?x ub:name ?n .
			FILTER(?n != "GradStudent0-0-0")
		}`),
		mkx("X2-optional", lubmPrefix+`SELECT * WHERE {
			?x a ub:UndergraduateStudent .
			?x ub:name ?n .
			OPTIONAL { ?x ub:advisor ?a }
		}`),
		mkx("X3-union", lubmPrefix+`SELECT ?x WHERE {
			{ ?x a ub:FullProfessor }
			UNION
			{ ?x a ub:AssociateProfessor }
			UNION
			{ ?x a ub:AssistantProfessor }
		}`),
		mkx("X4-path", lubmPrefix+`SELECT ?n WHERE {
			?x a ub:GraduateStudent .
			?x ub:advisor/ub:name ?n .
		}`),
		mkx("X5-inverse", lubmPrefix+`SELECT * WHERE {
			?c a ub:GraduateCourse .
			?c ^ub:teacherOf ?t .
			?t ub:name ?n .
		}`),
		mkx("X6-ordered", lubmPrefix+`SELECT ?n WHERE {
			?x a ub:FullProfessor .
			?x ub:name ?n .
		} ORDER BY ?n LIMIT 10`),
	}
}
