// Package gstats computes the paper's "global statistics": VoID-style
// dataset statistics extended with the distinct subject count (DSC) and
// distinct object count (DOC) of every property, plus per-class instance
// counts (Section 5).
//
// These are the statistics available to the GS planner variant and the
// fallback used by the SS variant for patterns without a type-defined
// subject.
package gstats

import (
	"fmt"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// PredStat holds the per-predicate statistics of the extended VoID graph.
type PredStat struct {
	// Count is the number of triples with this predicate.
	Count int64
	// DSC is the number of distinct subjects of this predicate.
	DSC int64
	// DOC is the number of distinct objects of this predicate.
	DOC int64
}

// Global is the global statistics graph G_gs of the paper.
type Global struct {
	// Triples is the total number of triples in the graph.
	Triples int64
	// DistinctSubjects and DistinctObjects count distinct terms in
	// subject and object position over the whole graph.
	DistinctSubjects int64
	DistinctObjects  int64
	// Pred maps each predicate IRI to its statistics.
	Pred map[string]PredStat
	// ClassInstances maps each class IRI (an rdf:type object) to its
	// number of instances.
	ClassInstances map[string]int64
}

// Compute derives global statistics from a frozen store.
func Compute(st *store.Store) *Global {
	g := &Global{
		Triples:          int64(st.Len()),
		DistinctSubjects: int64(st.DistinctSubjects(store.Wildcard)),
		DistinctObjects:  int64(st.DistinctObjects(store.Wildcard)),
		Pred:             map[string]PredStat{},
		ClassInstances:   map[string]int64{},
	}
	for _, p := range st.Predicates() {
		iri := st.Dict().Term(p).Value
		g.Pred[iri] = PredStat{
			Count: int64(st.Count(store.IDTriple{P: p})),
			DSC:   int64(st.DistinctSubjects(p)),
			DOC:   int64(st.DistinctObjects(p)),
		}
	}
	if tid := st.TypeID(); tid != 0 {
		for _, c := range st.ObjectsOf(tid) {
			cls := st.Dict().Term(c).Value
			g.ClassInstances[cls] = int64(st.Count(store.IDTriple{P: tid, O: c}))
		}
	}
	return g
}

// Clone returns a deep copy of g, so incremental maintenance can mutate
// a private copy while queries keep reading the published one.
func (g *Global) Clone() *Global {
	out := *g
	out.Pred = make(map[string]PredStat, len(g.Pred))
	for k, v := range g.Pred {
		out.Pred[k] = v
	}
	out.ClassInstances = make(map[string]int64, len(g.ClassInstances))
	for k, v := range g.ClassInstances {
		out.ClassInstances[k] = v
	}
	return &out
}

// TypeStat returns the statistics of rdf:type, which several Table 1
// formulas need; the zero PredStat is returned when the graph has no type
// triples.
func (g *Global) TypeStat() PredStat { return g.Pred[rdf.RDFType] }

// DistinctTypeObjects returns the number of distinct classes (rdf:type
// objects), one of the dataset characteristics of the paper's Table 3.
func (g *Global) DistinctTypeObjects() int64 { return int64(len(g.ClassInstances)) }

// statsIRI is the IRI of the dataset node in the serialized form.
const statsIRI = "urn:rdfshapes:global-statistics"

// ToGraph serializes the statistics as an RDF graph using the VoID
// vocabulary: the dataset node carries void:triples,
// void:distinctSubjects, void:distinctObjects, one void:propertyPartition
// per predicate (with count/DSC/DOC) and one void:classPartition per
// class (with void:entities).
func (g *Global) ToGraph() rdf.Graph {
	var out rdf.Graph
	ds := rdf.NewIRI(statsIRI)
	out.Append(ds, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.VoidDataset))
	out.Append(ds, rdf.NewIRI(rdf.VoidTriples), rdf.NewInteger(g.Triples))
	out.Append(ds, rdf.NewIRI(rdf.VoidDistinctSubjects), rdf.NewInteger(g.DistinctSubjects))
	out.Append(ds, rdf.NewIRI(rdf.VoidDistinctObjects), rdf.NewInteger(g.DistinctObjects))
	for iri, ps := range g.Pred {
		part := rdf.NewBlank("pp-" + sanitizeLabel(iri))
		out.Append(ds, rdf.NewIRI(rdf.VoidPropertyPartition), part)
		out.Append(part, rdf.NewIRI(rdf.VoidProperty), rdf.NewIRI(iri))
		out.Append(part, rdf.NewIRI(rdf.VoidTriples), rdf.NewInteger(ps.Count))
		out.Append(part, rdf.NewIRI(rdf.VoidDistinctSubjects), rdf.NewInteger(ps.DSC))
		out.Append(part, rdf.NewIRI(rdf.VoidDistinctObjects), rdf.NewInteger(ps.DOC))
	}
	for cls, n := range g.ClassInstances {
		part := rdf.NewBlank("cp-" + sanitizeLabel(cls))
		out.Append(ds, rdf.NewIRI(rdf.VoidClassPartition), part)
		out.Append(part, rdf.NewIRI(rdf.VoidClass), rdf.NewIRI(cls))
		out.Append(part, rdf.NewIRI(rdf.VoidEntities), rdf.NewInteger(n))
	}
	return out
}

// FromGraph reconstructs statistics from a graph produced by ToGraph.
func FromGraph(g rdf.Graph) (*Global, error) {
	out := &Global{Pred: map[string]PredStat{}, ClassInstances: map[string]int64{}}
	// index triples by subject
	bySubj := map[rdf.Term][]rdf.Triple{}
	for _, t := range g {
		bySubj[t.S] = append(bySubj[t.S], t)
	}
	ds := rdf.NewIRI(statsIRI)
	root, ok := bySubj[ds]
	if !ok {
		return nil, fmt.Errorf("gstats: graph has no dataset node %s", ds)
	}
	intVal := func(t rdf.Triple) (int64, error) {
		var n int64
		if !t.O.IsLiteral() {
			return 0, fmt.Errorf("gstats: %s has non-literal value %s", t.P, t.O)
		}
		if _, err := fmt.Sscanf(t.O.Value, "%d", &n); err != nil {
			return 0, fmt.Errorf("gstats: bad integer %q for %s: %w", t.O.Value, t.P, err)
		}
		return n, nil
	}
	for _, t := range root {
		var err error
		switch t.P.Value {
		case rdf.VoidTriples:
			out.Triples, err = intVal(t)
		case rdf.VoidDistinctSubjects:
			out.DistinctSubjects, err = intVal(t)
		case rdf.VoidDistinctObjects:
			out.DistinctObjects, err = intVal(t)
		case rdf.VoidPropertyPartition:
			err = parsePropertyPartition(bySubj[t.O], out)
		case rdf.VoidClassPartition:
			err = parseClassPartition(bySubj[t.O], out)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func parsePropertyPartition(ts []rdf.Triple, out *Global) error {
	var iri string
	var ps PredStat
	for _, t := range ts {
		switch t.P.Value {
		case rdf.VoidProperty:
			iri = t.O.Value
		case rdf.VoidTriples:
			fmt.Sscanf(t.O.Value, "%d", &ps.Count)
		case rdf.VoidDistinctSubjects:
			fmt.Sscanf(t.O.Value, "%d", &ps.DSC)
		case rdf.VoidDistinctObjects:
			fmt.Sscanf(t.O.Value, "%d", &ps.DOC)
		}
	}
	if iri == "" {
		return fmt.Errorf("gstats: property partition without void:property")
	}
	out.Pred[iri] = ps
	return nil
}

func parseClassPartition(ts []rdf.Triple, out *Global) error {
	var cls string
	var n int64
	for _, t := range ts {
		switch t.P.Value {
		case rdf.VoidClass:
			cls = t.O.Value
		case rdf.VoidEntities:
			fmt.Sscanf(t.O.Value, "%d", &n)
		}
	}
	if cls == "" {
		return fmt.Errorf("gstats: class partition without void:class")
	}
	out.ClassInstances[cls] = n
	return nil
}

// sanitizeLabel makes an IRI usable as a blank node label.
func sanitizeLabel(iri string) string {
	b := make([]byte, 0, len(iri))
	for i := 0; i < len(iri); i++ {
		c := iri[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			b = append(b, c)
		} else {
			b = append(b, '-')
		}
	}
	return string(b)
}
