package gstats

import (
	"reflect"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

func sample() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("a"), typ, iri("Person"))
	g.Append(iri("b"), typ, iri("Person"))
	g.Append(iri("c"), typ, iri("Dog"))
	g.Append(iri("a"), iri("knows"), iri("b"))
	g.Append(iri("a"), iri("knows"), iri("c"))
	g.Append(iri("b"), iri("knows"), iri("c"))
	g.Append(iri("a"), iri("name"), rdf.NewLiteral("A"))
	g.Append(iri("b"), iri("name"), rdf.NewLiteral("A")) // shared literal
	return store.Load(g)
}

func TestCompute(t *testing.T) {
	g := Compute(sample())
	if g.Triples != 8 {
		t.Errorf("Triples = %d, want 8", g.Triples)
	}
	if g.DistinctSubjects != 3 {
		t.Errorf("DistinctSubjects = %d, want 3", g.DistinctSubjects)
	}
	// objects: Person, Dog, b, c, "A"
	if g.DistinctObjects != 5 {
		t.Errorf("DistinctObjects = %d, want 5", g.DistinctObjects)
	}
	knows := g.Pred["http://x/knows"]
	if knows.Count != 3 || knows.DSC != 2 || knows.DOC != 2 {
		t.Errorf("knows = %+v", knows)
	}
	name := g.Pred["http://x/name"]
	if name.Count != 2 || name.DSC != 2 || name.DOC != 1 {
		t.Errorf("name = %+v", name)
	}
	if g.ClassInstances["http://x/Person"] != 2 || g.ClassInstances["http://x/Dog"] != 1 {
		t.Errorf("ClassInstances = %v", g.ClassInstances)
	}
	if g.DistinctTypeObjects() != 2 {
		t.Errorf("DistinctTypeObjects = %d", g.DistinctTypeObjects())
	}
	ts := g.TypeStat()
	if ts.Count != 3 || ts.DSC != 3 || ts.DOC != 2 {
		t.Errorf("TypeStat = %+v", ts)
	}
}

func TestComputeNoTypes(t *testing.T) {
	var gr rdf.Graph
	gr.Append(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	g := Compute(store.Load(gr))
	if len(g.ClassInstances) != 0 {
		t.Errorf("ClassInstances = %v, want empty", g.ClassInstances)
	}
	if g.TypeStat() != (PredStat{}) {
		t.Errorf("TypeStat = %+v, want zero", g.TypeStat())
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := Compute(sample())
	rt, err := FromGraph(g.ToGraph())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, rt) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", rt, g)
	}
}

func TestFromGraphMissingDataset(t *testing.T) {
	var gr rdf.Graph
	gr.Append(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	if _, err := FromGraph(gr); err == nil {
		t.Error("FromGraph without dataset node should error")
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel("http://x/a#b"); got != "http---x-a-b" {
		t.Errorf("sanitizeLabel = %q", got)
	}
}
