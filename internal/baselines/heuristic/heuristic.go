// Package heuristic mimics Apache Jena ARQ's data-independent query
// planner: the variable-counting heuristic of Stocker et al. (WWW 2008)
// as implemented by ARQ's fixed reordering. Patterns are weighted by
// which positions are bound — treating an already-chosen pattern's
// variables as bound — and ties break by the textual order of the input,
// which is exactly why the paper observes non-deterministic, often
// suboptimal Jena plans under triple-pattern shuffling.
package heuristic

import (
	"rdfshapes/internal/core"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
)

// Planner is the Jena-ARQ-style heuristic planner.
type Planner struct{}

// New returns the heuristic planner.
func New() *Planner { return &Planner{} }

// Name implements core.Planner.
func (*Planner) Name() string { return "Jena" }

// Weights for boundness masks, patterned after ARQ's fixed reorder
// weights: more bound positions are assumed more selective, a bound
// object more selective than a bound subject, and rdf:type with a bound
// object is penalized as notoriously unselective.
const (
	weightSPO     = 1
	weightSP      = 2
	weightSO      = 3
	weightPO      = 4
	weightTypeObj = 1000 // <?x rdf:type Class>
	weightS       = 5
	weightO       = 6
	weightP       = 8
	weightTypeVar = 2000 // <?x rdf:type ?c>
	weightNone    = 10000
)

// weight scores tp treating variables in bound as already bound.
func weight(tp sparql.TriplePattern, bound map[string]bool) int {
	isBound := func(pt sparql.PatternTerm) bool {
		return !pt.IsVar() || bound[pt.Var]
	}
	s, p, o := isBound(tp.S), isBound(tp.P), isBound(tp.O)
	isType := !tp.P.IsVar() && tp.P.Term.Value == rdf.RDFType
	switch {
	case s && p && o:
		return weightSPO
	case s && p:
		return weightSP
	case s && o:
		return weightSO
	case p && o:
		if isType {
			return weightTypeObj
		}
		return weightPO
	case s:
		return weightS
	case o:
		return weightO
	case p:
		if isType {
			return weightTypeVar
		}
		return weightP
	default:
		return weightNone
	}
}

// Plan implements core.Planner with greedy minimum-weight selection.
// The first pattern (in input order) achieving the minimum weight wins
// each round, so the plan depends on the textual pattern order.
func (pl *Planner) Plan(q *sparql.Query) *core.Plan {
	plan := &core.Plan{Estimator: pl.Name()}
	remaining := append([]sparql.TriplePattern(nil), q.Patterns...)
	bound := map[string]bool{}
	for len(remaining) > 0 {
		best := 0
		bestW := weight(remaining[0], bound)
		for i := 1; i < len(remaining); i++ {
			if w := weight(remaining[i], bound); w < bestW {
				best, bestW = i, w
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
		plan.Steps = append(plan.Steps, core.Step{Pattern: tp, JoinedWith: -1})
	}
	return plan
}
