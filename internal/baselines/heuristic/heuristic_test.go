package heuristic

import (
	"testing"

	"rdfshapes/internal/sparql"
)

func TestWeightsOrdering(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?s ex:p ex:o .
			?s ex:p ?o .
			ex:s ?p ?o2 .
			?s a ex:Class .
			?s2 ?p2 ?o3 .
		}`)
	none := map[string]bool{}
	wPO := weight(q.Patterns[0], none)
	wP := weight(q.Patterns[1], none)
	wS := weight(q.Patterns[2], none)
	wType := weight(q.Patterns[3], none)
	wNone := weight(q.Patterns[4], none)
	if !(wPO < wP && wP < wType && wType < wNone) {
		t.Errorf("weights not ordered: PO=%d P=%d type=%d none=%d", wPO, wP, wType, wNone)
	}
	if wS != weightS {
		t.Errorf("bound-subject-only weight = %d, want %d", wS, weightS)
	}
	// binding ?s upgrades boundness
	bound := map[string]bool{"s": true}
	if got := weight(q.Patterns[1], bound); got != weightSP {
		t.Errorf("bound-subject weight = %d, want %d", got, weightSP)
	}
	if got := weight(q.Patterns[0], bound); got != weightSPO {
		t.Errorf("fully bound weight = %d, want %d", got, weightSPO)
	}
}

func TestTypePatternPenalty(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?s a ex:Class .
			?s ex:p ex:o .
		}`)
	p := New()
	plan := p.Plan(q)
	// the PO pattern must run before the penalized type pattern
	if plan.Steps[0].Pattern.IsTypePattern() {
		t.Error("type pattern scheduled first despite penalty")
	}
	if p.Name() != "Jena" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPlanIsInputOrderSensitive(t *testing.T) {
	// two patterns with identical weights: the first in input order wins,
	// which is the non-determinism the paper observes under shuffling.
	src1 := `PREFIX ex: <http://x/>
		SELECT * WHERE { ?a ex:p ?b . ?c ex:q ?d . }`
	src2 := `PREFIX ex: <http://x/>
		SELECT * WHERE { ?c ex:q ?d . ?a ex:p ?b . }`
	p := New()
	plan1 := p.Plan(sparql.MustParse(src1))
	plan2 := p.Plan(sparql.MustParse(src2))
	if plan1.Steps[0].Pattern.String() == plan2.Steps[0].Pattern.String() {
		t.Error("tie-breaking ignored input order")
	}
}

func TestPlanCoversAllPatterns(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?a a ex:T .
			?a ex:p ?b .
			?b ex:q ?c .
			?c ex:r "lit" .
		}`)
	plan := New().Plan(q)
	if len(plan.Steps) != 4 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	seen := map[string]bool{}
	for _, s := range plan.Steps {
		seen[s.Pattern.String()] = true
	}
	if len(seen) != 4 {
		t.Error("duplicate or missing patterns in plan")
	}
}

func TestBoundnessPropagation(t *testing.T) {
	// after choosing <?c ex:r "lit">, ?c is bound, making <?b ex:q ?c>
	// a (PO)-shaped pattern that should run before <?a ex:p ?b>.
	q := sparql.MustParse(`
		PREFIX ex: <http://x/>
		SELECT * WHERE {
			?a ex:p ?b .
			?b ex:q ?c .
			?c ex:r "lit" .
		}`)
	plan := New().Plan(q)
	order := make([]string, len(plan.Steps))
	for i, s := range plan.Steps {
		order[i] = s.Pattern.String()
	}
	if order[0] != q.Patterns[2].String() {
		t.Fatalf("first = %s, want the most-bound pattern", order[0])
	}
	if order[1] != q.Patterns[1].String() {
		t.Errorf("second = %s, want the newly-bound chain pattern", order[1])
	}
}
