// Package selectivity mimics the class of planner GraphDB's onto:explain
// output reflects: ordering driven by per-triple-pattern selectivity
// computed from global per-predicate statistics, preferring connected
// patterns, but without pairwise join-cardinality estimation.
//
// GraphDB itself is closed source; this baseline reproduces its
// documented behaviour class (collection-size/selectivity statistics per
// access path) rather than its exact implementation, as recorded in
// DESIGN.md.
package selectivity

import (
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/sparql"
)

// Planner orders patterns by standalone estimated cardinality with a
// connectivity-first rule.
type Planner struct {
	est *cardinality.GlobalEstimator
}

// New returns a selectivity planner over global statistics g.
func New(g *gstats.Global) *Planner {
	return &Planner{est: cardinality.NewGlobalEstimator(g)}
}

// Name implements core.Planner.
func (*Planner) Name() string { return "GDB" }

// Plan implements core.Planner: seed with the smallest estimated pattern,
// then repeatedly append the smallest-cardinality pattern sharing a
// variable with the prefix (any pattern when none is connected).
func (pl *Planner) Plan(q *sparql.Query) *core.Plan {
	plan := &core.Plan{Estimator: pl.Name()}
	n := len(q.Patterns)
	if n == 0 {
		return plan
	}
	stats := make([]cardinality.TPStats, n)
	for i, tp := range q.Patterns {
		stats[i] = pl.est.EstimateTP(q, tp)
	}
	used := make([]bool, n)
	bound := map[string]bool{}

	connected := func(tp sparql.TriplePattern) bool {
		for _, v := range tp.Vars() {
			if bound[v] {
				return true
			}
		}
		return false
	}

	for len(plan.Steps) < n {
		best := -1
		bestConnected := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			conn := len(plan.Steps) == 0 || connected(q.Patterns[i])
			switch {
			case best == -1,
				conn && !bestConnected,
				conn == bestConnected && stats[i].Card < stats[best].Card:
				best = i
				bestConnected = conn
			}
		}
		used[best] = true
		for _, v := range q.Patterns[best].Vars() {
			bound[v] = true
		}
		plan.Steps = append(plan.Steps, core.Step{
			Pattern:      q.Patterns[best],
			TP:           stats[best],
			JoinEstimate: stats[best].Card,
			JoinedWith:   -1,
			Cartesian:    len(plan.Steps) > 0 && !bestConnected,
		})
		plan.Cost += stats[best].Card
	}
	return plan
}

// Estimator exposes the underlying global estimator so the harness can
// compute this approach's final-cardinality estimates (for q-error).
func (pl *Planner) Estimator() cardinality.Estimator { return pl.est }
