package selectivity

import (
	"testing"

	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

func setup(t testing.TB) (*store.Store, *Planner) {
	t.Helper()
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 5})
	st := store.Load(g)
	return st, New(gstats.Compute(st))
}

const prefix = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"

func TestPlanOrdersBySelectivity(t *testing.T) {
	_, p := setup(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x ub:name ?n .
		?x a ub:FullProfessor .
	}`)
	plan := p.Plan(q)
	if !plan.Steps[0].Pattern.IsTypePattern() {
		t.Errorf("seed = %v, want the more selective type pattern", plan.Steps[0].Pattern)
	}
	if p.Name() != "GDB" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPlanPrefersConnectedOverCheaper(t *testing.T) {
	_, p := setup(t)
	// The tiny Department pattern seeds the plan; after that nothing is
	// connected to ?d, so the planner pays one marked Cartesian step and
	// then must pick the connected teacherOf pattern over starting
	// another component — connectivity beats raw selectivity.
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:FullProfessor .
		?x ub:teacherOf ?c .
		?d a ub:Department .
	}`)
	plan := p.Plan(q)
	if plan.Steps[0].Pattern.String() != q.Patterns[2].String() {
		t.Errorf("seed = %v, want the smallest pattern (Department)", plan.Steps[0].Pattern)
	}
	if !plan.Steps[1].Cartesian {
		t.Error("component switch not marked Cartesian")
	}
	if plan.Steps[1].Pattern.String() != q.Patterns[0].String() {
		t.Errorf("second = %v, want the cheaper FullProfessor pattern", plan.Steps[1].Pattern)
	}
	if plan.Steps[2].Cartesian {
		t.Error("connected teacherOf step wrongly marked Cartesian")
	}
}

func TestPlanCoversAllAndCostAccumulates(t *testing.T) {
	_, p := setup(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:GraduateStudent .
		?x ub:advisor ?a .
		?a ub:teacherOf ?c .
		?x ub:takesCourse ?c .
	}`)
	plan := p.Plan(q)
	if len(plan.Steps) != 4 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Cost <= 0 {
		t.Errorf("cost = %v", plan.Cost)
	}
	if p.Estimator() == nil {
		t.Error("Estimator() returned nil")
	}
}

func TestPlanEmptyQuery(t *testing.T) {
	_, p := setup(t)
	plan := p.Plan(&sparql.Query{})
	if len(plan.Steps) != 0 {
		t.Errorf("steps = %d", len(plan.Steps))
	}
}
