package charsets

import (
	"testing"

	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

const ns = "http://x/"

// correlated builds a graph where predicate co-occurrence defeats
// independence: every Writer has exactly authored+name, every Reader has
// exactly reads+name; authored and reads never co-occur.
func correlated() (*store.Store, *Estimator) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for i := 0; i < 10; i++ {
		w := iri("w" + string(rune('0'+i)))
		g.Append(w, typ, iri("Writer"))
		g.Append(w, iri("name"), rdf.NewLiteral("W"))
		g.Append(w, iri("authored"), iri("book"+string(rune('0'+i))))
		g.Append(w, iri("authored"), iri("book"+string(rune('0'+(i+1)%10))))
	}
	for i := 0; i < 20; i++ {
		r := iri("r" + string(rune('a'+i)))
		g.Append(r, typ, iri("Reader"))
		g.Append(r, iri("name"), rdf.NewLiteral("R"))
		g.Append(r, iri("reads"), iri("book"+string(rune('0'+i%10))))
	}
	st := store.Load(g)
	return st, Build(st, gstats.Compute(st))
}

func TestBuildExtractsSets(t *testing.T) {
	_, cs := correlated()
	// two characteristic sets: {type,name,authored} and {type,name,reads}
	if cs.NumSets() != 2 {
		t.Fatalf("NumSets = %d, want 2", cs.NumSets())
	}
	if cs.ApproxBytes() <= 0 {
		t.Error("ApproxBytes must be positive")
	}
	if cs.Name() != "CS" {
		t.Errorf("Name = %q", cs.Name())
	}
}

func tp(s, p, o string) sparql.TriplePattern {
	mk := func(x string, pred bool) sparql.PatternTerm {
		if x[0] == '?' {
			return sparql.Variable(x[1:])
		}
		if x == "a" {
			return sparql.Bound(rdf.NewIRI(rdf.RDFType))
		}
		return sparql.Bound(rdf.NewIRI(ns + x))
	}
	return sparql.TriplePattern{S: mk(s, false), P: mk(p, true), O: mk(o, false)}
}

func TestEstimateTPExactCounts(t *testing.T) {
	_, cs := correlated()
	q := &sparql.Query{}
	if got := cs.EstimateTP(q, tp("?x", "authored", "?b")).Card; got != 20 {
		t.Errorf("authored card = %v, want 20", got)
	}
	ts := cs.EstimateTP(q, tp("?x", "name", "?n"))
	if ts.Card != 30 {
		t.Errorf("name card = %v, want 30", ts.Card)
	}
	if ts.DSC != 30 {
		t.Errorf("name DSC = %v, want 30", ts.DSC)
	}
}

func TestEstimatePairCorrelation(t *testing.T) {
	_, cs := correlated()
	q := &sparql.Query{}
	// authored ⋈SS name: every writer has both → exactly 20 (2 books × 1 name × 10)
	got, ok := cs.EstimatePair(q, tp("?x", "authored", "?b"), tp("?x", "name", "?n"))
	if !ok {
		t.Fatal("pair not estimated")
	}
	if got != 20 {
		t.Errorf("authored⋈name = %v, want 20", got)
	}
	// authored ⋈SS reads: never co-occur → exactly 0
	got, ok = cs.EstimatePair(q, tp("?x", "authored", "?b"), tp("?x", "reads", "?c"))
	if !ok {
		t.Fatal("pair not estimated")
	}
	if got != 0 {
		t.Errorf("authored⋈reads = %v, want 0 (disjoint predicates)", got)
	}
}

func TestEstimatePairClassRestriction(t *testing.T) {
	_, cs := correlated()
	q := &sparql.Query{}
	got, ok := cs.EstimatePair(q, tp("?x", "a", "Writer"), tp("?x", "name", "?n"))
	if !ok {
		t.Fatal("type pair not estimated")
	}
	if got != 10 {
		t.Errorf("Writer⋈name = %v, want 10", got)
	}
}

func TestEstimatePairRejectsNonSSJoins(t *testing.T) {
	_, cs := correlated()
	q := &sparql.Query{}
	cases := [][2]sparql.TriplePattern{
		{tp("?x", "authored", "?b"), tp("?b", "name", "?n")},  // SO
		{tp("?x", "authored", "?b"), tp("?y", "reads", "?b")}, // OO
		{tp("?x", "authored", "?b"), tp("?x", "?p", "?c")},    // var predicate
		{tp("?x", "authored", "?b"), tp("?x", "reads", "?b")}, // SS+OO mixed
	}
	for i, c := range cases {
		if _, ok := cs.EstimatePair(q, c[0], c[1]); ok {
			t.Errorf("case %d: pair estimated, want fallback", i)
		}
	}
}

func TestEstimateBGPStarExact(t *testing.T) {
	st, cs := correlated()
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Writer"),
		tp("?x", "authored", "?b"),
		tp("?x", "name", "?n"),
	}}
	got := cs.EstimateBGP(q)
	er, err := engine.Run(st, q.Patterns, engine.Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(er.Count) {
		t.Errorf("star estimate = %v, true = %d (CS must be exact on stars)", got, er.Count)
	}
}

func TestEstimateBGPSnowflakeUnderestimates(t *testing.T) {
	st, cs := correlated()
	// writer-book-reader snowflake: cross-star join uses independence
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "authored", "?b"),
		tp("?y", "reads", "?b"),
	}}
	est := cs.EstimateBGP(q)
	er, err := engine.Run(st, q.Patterns, engine.Options{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimate = %v", est)
	}
	// must be in the right ballpark but need not be exact
	ratio := est / float64(er.Count)
	if ratio > 10 || ratio < 0.1 {
		t.Errorf("snowflake estimate %v too far from truth %d", est, er.Count)
	}
}

func TestEstimateBGPEmpty(t *testing.T) {
	_, cs := correlated()
	if got := cs.EstimateBGP(&sparql.Query{}); got != 0 {
		t.Errorf("empty BGP estimate = %v", got)
	}
}

func TestStarCardBoundObject(t *testing.T) {
	_, cs := correlated()
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "reads", "book0"),
	}}
	est := cs.EstimateBGP(q)
	// 20 reads-triples over 10 distinct books → 2 expected
	if est != 2 {
		t.Errorf("bound object star = %v, want 2", est)
	}
}
