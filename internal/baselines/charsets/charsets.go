// Package charsets implements the Characteristic Sets cardinality
// estimator of Neumann & Moerkotte (ICDE 2011), the paper's "CS"
// baseline: for every subject, the set of predicates it emits is its
// characteristic set; counting subjects and predicate occurrences per set
// captures predicate co-occurrence exactly, which makes star-query
// estimates precise. Joins across stars fall back to the independence
// assumption — the systematic underestimation the paper observes on
// snowflake queries (following Extended Characteristic Sets, ICDE 2017,
// stars are estimated as units and only inter-star joins use the generic
// formulas).
package charsets

import (
	"sort"
	"strings"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// CharSet is one characteristic set: the subjects sharing exactly this
// predicate set, with occurrence totals per predicate and per class.
type CharSet struct {
	// Preds lists the predicate IRIs of the set, sorted.
	Preds []string
	// Count is the number of subjects with exactly this predicate set.
	Count int64
	// Occ maps each predicate to its total occurrence count over these
	// subjects; Occ[p]/Count is the mean multiplicity used in estimates.
	Occ map[string]int64
	// ClassCount maps a class IRI to the number of these subjects that
	// are instances of it (from rdf:type objects).
	ClassCount map[string]int64
}

// Estimator is the CS cardinality estimator and planner backend.
type Estimator struct {
	sets   []*CharSet
	byPred map[string][]int
	global *cardinality.GlobalEstimator
}

// Build extracts characteristic sets from the store in one pass over the
// subject-grouped index. The global statistics provide distinct-count
// fallbacks for quantities characteristic sets do not capture.
func Build(st *store.Store, g *gstats.Global) *Estimator {
	e := &Estimator{
		byPred: map[string][]int{},
		global: cardinality.NewGlobalEstimator(g),
	}
	index := map[string]int{}
	tid := st.TypeID()
	st.ForEachSubject(func(subject store.ID, triples []store.IDTriple) bool {
		var preds []string
		occ := map[string]int64{}
		var classes []string
		for _, t := range triples {
			p := st.Dict().Term(t.P).Value
			if occ[p] == 0 {
				preds = append(preds, p)
			}
			occ[p]++
			if tid != 0 && t.P == tid {
				classes = append(classes, st.Dict().Term(t.O).Value)
			}
		}
		sort.Strings(preds)
		key := strings.Join(preds, "\x00")
		idx, ok := index[key]
		if !ok {
			idx = len(e.sets)
			index[key] = idx
			cs := &CharSet{Preds: preds, Occ: map[string]int64{}, ClassCount: map[string]int64{}}
			e.sets = append(e.sets, cs)
			for _, p := range preds {
				e.byPred[p] = append(e.byPred[p], idx)
			}
		}
		cs := e.sets[idx]
		cs.Count++
		for p, n := range occ {
			cs.Occ[p] += n
		}
		for _, c := range classes {
			cs.ClassCount[c]++
		}
		return true
	})
	return e
}

// NumSets returns the number of distinct characteristic sets, the size
// driver the paper's preprocessing comparison reports.
func (e *Estimator) NumSets() int { return len(e.sets) }

// ApproxBytes estimates the in-memory footprint of the extracted sets,
// used by the preprocessing-overhead experiment.
func (e *Estimator) ApproxBytes() int64 {
	var n int64
	for _, cs := range e.sets {
		for _, p := range cs.Preds {
			n += int64(len(p)) + 16 // string + occurrence counter
		}
		for c := range cs.ClassCount {
			n += int64(len(c)) + 8
		}
		n += 24 // set header
	}
	return n
}

// Name implements cardinality.Estimator.
func (*Estimator) Name() string { return "CS" }

// EstimateTP implements cardinality.Estimator. Single patterns carry no
// co-occurrence information, so most cases coincide with global
// statistics; characteristic sets still answer "distinct subjects with
// predicate p" and class instance counts exactly.
func (e *Estimator) EstimateTP(q *sparql.Query, tp sparql.TriplePattern) cardinality.TPStats {
	base := e.global.EstimateTP(q, tp)
	if tp.P.IsVar() || !tp.S.IsVar() {
		return base
	}
	p := tp.P.Term.Value
	if p == rdf.RDFType || !tp.O.IsVar() {
		return base
	}
	var card, dsc float64
	for _, idx := range e.byPred[p] {
		cs := e.sets[idx]
		card += float64(cs.Occ[p])
		dsc += float64(cs.Count)
	}
	base.Card = card
	if dsc >= 1 {
		base.DSC = dsc
	}
	return base
}

// EstimatePair implements cardinality.PairEstimator: subject-subject
// joins between bound-predicate patterns are estimated exactly from
// predicate co-occurrence. Other join shapes return ok=false so the
// planner applies the generic independence formulas.
func (e *Estimator) EstimatePair(q *sparql.Query, a, b sparql.TriplePattern) (float64, bool) {
	if !a.S.IsVar() || !b.S.IsVar() || a.S.Var != b.S.Var {
		return 0, false
	}
	if a.P.IsVar() || b.P.IsVar() {
		return 0, false
	}
	// Ensure the *only* shared variable is the subject; correlated
	// object variables (e.g. <?x p ?o . ?x q ?o>) are beyond CS.
	for _, j := range sparql.Joins(a, b) {
		if j.Kind != sparql.JoinSS {
			return 0, false
		}
	}
	card := e.starCard([]sparql.TriplePattern{a, b}, q)
	return card, true
}

// starCard estimates the cardinality of a subject-star of bound-predicate
// patterns: Σ over characteristic sets containing all predicates of
// count × Π multiplicities, restricted to a class when the star includes
// a type pattern, and scaled by 1/DOC for bound objects.
func (e *Estimator) starCard(star []sparql.TriplePattern, q *sparql.Query) float64 {
	var preds []string   // non-type predicates that must co-occur
	var classes []string // required classes from type patterns
	sel := 1.0           // bound-object selectivity factors
	for _, tp := range star {
		p := tp.P.Term.Value
		if p == rdf.RDFType {
			if !tp.O.IsVar() {
				classes = append(classes, tp.O.Term.Value)
			} else {
				preds = append(preds, p)
			}
			continue
		}
		preds = append(preds, p)
		if !tp.O.IsVar() {
			gs := e.global.EstimateTP(q, sparql.TriplePattern{
				S: sparql.Variable("s"), P: tp.P, O: sparql.Variable("o"),
			})
			sel /= maxf(1, gs.DOC)
		}
	}
	// Candidate sets: those containing the rarest predicate (or all sets
	// when the star is type-only).
	var candidates []int
	if len(preds) > 0 {
		rarest := preds[0]
		for _, p := range preds[1:] {
			if len(e.byPred[p]) < len(e.byPred[rarest]) {
				rarest = p
			}
		}
		candidates = e.byPred[rarest]
	} else if len(classes) > 0 {
		candidates = e.byPred[rdf.RDFType]
	}
	var total float64
	for _, idx := range candidates {
		cs := e.sets[idx]
		contrib := float64(cs.Count)
		ok := true
		for _, c := range classes {
			if cc := cs.ClassCount[c]; cc > 0 {
				// fraction of this set's subjects in the class
				contrib *= float64(cc) / float64(cs.Count)
			} else {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range preds {
			occ := cs.Occ[p]
			if occ == 0 {
				ok = false
				break
			}
			contrib *= float64(occ) / float64(cs.Count)
		}
		if ok {
			total += contrib
		}
	}
	return total * sel
}

// EstimateBGP estimates the full result cardinality of q's BGP: stars
// are grouped by subject variable and estimated exactly; inter-star
// connections and non-star patterns are combined with the generic
// formulas over the star estimates (the independence assumption).
func (e *Estimator) EstimateBGP(q *sparql.Query) float64 {
	type star struct {
		subject  string
		patterns []sparql.TriplePattern
	}
	var stars []*star
	bySubject := map[string]*star{}
	var loose []sparql.TriplePattern
	for _, tp := range q.Patterns {
		if tp.S.IsVar() && !tp.P.IsVar() {
			s := bySubject[tp.S.Var]
			if s == nil {
				s = &star{subject: tp.S.Var}
				bySubject[tp.S.Var] = s
				stars = append(stars, s)
			}
			s.patterns = append(s.patterns, tp)
			continue
		}
		loose = append(loose, tp)
	}

	// Estimate each star as a unit, tracking its distinct-count stats.
	type unit struct {
		card     float64
		patterns []sparql.TriplePattern
		vars     map[string]float64 // per-variable distinct estimate
	}
	var units []unit
	for _, s := range stars {
		card := e.starCard(s.patterns, q)
		vars := map[string]float64{}
		dsc := card
		for _, tp := range s.patterns {
			ts := e.EstimateTP(q, tp)
			if ts.DSC < dsc {
				dsc = ts.DSC
			}
			if tp.O.IsVar() {
				vars[tp.O.Var] = minf(maxf(1, ts.DOC), maxf(1, card))
			}
		}
		vars[s.subject] = minf(maxf(1, dsc), maxf(1, card))
		units = append(units, unit{card: card, patterns: s.patterns, vars: vars})
	}
	for _, tp := range loose {
		ts := e.global.EstimateTP(q, tp)
		vars := map[string]float64{}
		for _, v := range tp.Vars() {
			vars[v] = minf(maxf(1, varStat(tp, ts, v)), maxf(1, ts.Card))
		}
		units = append(units, unit{card: ts.Card, patterns: []sparql.TriplePattern{tp}, vars: vars})
	}
	if len(units) == 0 {
		return 0
	}
	// Combine units greedily over shared variables with independence.
	sort.Slice(units, func(i, j int) bool { return units[i].card < units[j].card })
	acc := units[0]
	rest := units[1:]
	for len(rest) > 0 {
		// pick a unit sharing a variable if possible
		pick := -1
		for i, u := range rest {
			for v := range u.vars {
				if _, ok := acc.vars[v]; ok {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		u := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		denom := 0.0
		for v, d := range u.vars {
			if da, ok := acc.vars[v]; ok {
				if m := maxf(da, d); m > denom {
					denom = m
				}
			}
		}
		if denom < 1 {
			denom = 1 // Cartesian product when no shared variable
		}
		acc.card = acc.card * u.card / denom
		for v, d := range u.vars {
			if da, ok := acc.vars[v]; !ok || d < da {
				acc.vars[v] = d
			}
		}
		for v := range acc.vars {
			if acc.vars[v] > maxf(1, acc.card) {
				acc.vars[v] = maxf(1, acc.card)
			}
		}
	}
	return acc.card
}

func varStat(tp sparql.TriplePattern, ts cardinality.TPStats, v string) float64 {
	switch {
	case tp.S.IsVar() && tp.S.Var == v:
		return ts.DSC
	case tp.O.IsVar() && tp.O.Var == v:
		return ts.DOC
	default:
		return ts.Card
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
