// Package sumrdf implements the paper's "SumRDF" baseline: cardinality
// estimation over a graph summary (Stefanoni, Motik, Kostylev, WWW 2018).
// Data nodes are partitioned into buckets — by class set, folded to a
// target summary size — and the summary records, for every (source
// bucket, predicate, target bucket), the number of data triples it
// covers. A BGP's cardinality is estimated as its expected number of
// matches over a random graph consistent with the summary: for every
// consistent mapping of query nodes to buckets, the product of per-edge
// match probabilities times the product of bucket sizes.
//
// The estimator is accurate even for small summaries but estimation
// enumerates bucket embeddings, so its cost grows quickly with query
// size and summary size — the behaviour the paper reports (SumRDF "fails
// to handle large queries due to a prohibitive computation cost").
package sumrdf

import (
	"fmt"
	"sort"
	"strings"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// Summary is a bucket-level summarization of an RDF graph.
type Summary struct {
	bucketSize []float64 // size of each bucket (number of data terms)
	// nodeBucket maps term IDs (as interned in the source store's
	// dictionary) to bucket indexes; consulted for constants in queries.
	nodeBucket map[string]int
	// edges, indexed by predicate IRI: summary edges with weights.
	edges map[string][]edge
	// global statistics back distinct-count fallbacks for planning.
	global *cardinality.GlobalEstimator
	// TargetSize is the requested number of buckets.
	TargetSize int
	// OpsBudget caps the number of embedding-enumeration steps per
	// estimate (0 means DefaultOpsBudget); when exhausted the estimate
	// is cut off, reproducing SumRDF's prohibitive cost on large
	// queries. Ops reports the steps the last estimate consumed.
	OpsBudget int64
	lastOps   int64
}

// DefaultOpsBudget is the per-estimate embedding-step budget.
const DefaultOpsBudget = 4 << 20

type edge struct {
	src, dst int
	weight   float64
}

// Build summarizes st into at most targetSize buckets. Class nodes
// (objects of rdf:type) are kept in singleton buckets so the summary
// preserves the schema, as SumRDF's typed summaries do.
func Build(st *store.Store, g *gstats.Global, targetSize int) (*Summary, error) {
	if targetSize < 1 {
		return nil, fmt.Errorf("sumrdf: target size must be positive, got %d", targetSize)
	}
	s := &Summary{
		nodeBucket: map[string]int{},
		edges:      map[string][]edge{},
		global:     cardinality.NewGlobalEstimator(g),
		TargetSize: targetSize,
	}
	tid := st.TypeID()

	// Pass 1: group subjects by class-set signature; every class node is
	// a singleton bucket.
	newBucket := func(term string, size float64) int {
		idx := len(s.bucketSize)
		s.bucketSize = append(s.bucketSize, size)
		if term != "" {
			s.nodeBucket[term] = idx
		}
		return idx
	}
	classBucket := map[store.ID]int{}
	if tid != 0 {
		for _, c := range st.ObjectsOf(tid) {
			classBucket[c] = newBucket(termKey(st.Dict().Term(c)), 1)
		}
	}
	// signature → folded bucket index. Signatures are hashed into the
	// remaining bucket budget.
	budget := targetSize
	if budget < 1 {
		budget = 1
	}
	sigBucket := map[string]int{}
	bucketOf := map[store.ID]int{}
	assign := func(node store.ID, sig string) int {
		if b, ok := bucketOf[node]; ok {
			return b
		}
		if b, ok := classBucket[node]; ok {
			bucketOf[node] = b
			return b
		}
		key := sig
		if len(sigBucket) >= budget {
			// fold new signatures into existing buckets deterministically
			key = fmt.Sprintf("fold-%d", fnv(sig)%uint64(budget))
			if _, ok := sigBucket[key]; !ok {
				// ensure fold targets exist even before budget exhaustion
				sigBucket[key] = newBucket("", 0)
			}
		}
		b, ok := sigBucket[key]
		if !ok {
			b = newBucket("", 0)
			sigBucket[key] = b
		}
		s.bucketSize[b]++
		bucketOf[node] = b
		s.nodeBucket[termKey(st.Dict().Term(node))] = b
		return b
	}

	// Subjects: signature = sorted class list; untyped subjects get the
	// "untyped" signature. Objects seen only as objects: signature by
	// term kind (IRI vs literal datatype).
	st.ForEachSubject(func(subject store.ID, triples []store.IDTriple) bool {
		var classes []string
		for _, t := range triples {
			if t.P == tid && tid != 0 {
				classes = append(classes, st.Dict().Term(t.O).Value)
			}
		}
		sort.Strings(classes)
		sig := "untyped"
		if len(classes) > 0 {
			sig = strings.Join(classes, "\x00")
		}
		assign(subject, sig)
		return true
	})
	objectSig := func(o store.ID) string {
		term := st.Dict().Term(o)
		if term.IsLiteral() {
			dt := term.Datatype
			if dt == "" {
				dt = rdf.XSDString
			}
			return "literal\x00" + dt
		}
		return "object-only"
	}

	// Pass 2: aggregate summary edges.
	type ekey struct {
		p        string
		src, dst int
	}
	agg := map[ekey]float64{}
	st.Scan(store.IDTriple{}, func(t store.IDTriple) bool {
		src := assign(t.S, "untyped")
		dst := assign(t.O, objectSig(t.O))
		p := st.Dict().Term(t.P).Value
		agg[ekey{p, src, dst}]++
		return true
	})
	for k, w := range agg {
		s.edges[k.p] = append(s.edges[k.p], edge{src: k.src, dst: k.dst, weight: w})
	}
	for p := range s.edges {
		es := s.edges[p]
		sort.Slice(es, func(i, j int) bool {
			if es[i].src != es[j].src {
				return es[i].src < es[j].src
			}
			return es[i].dst < es[j].dst
		})
	}
	return s, nil
}

// NumBuckets returns the number of buckets actually created.
func (s *Summary) NumBuckets() int { return len(s.bucketSize) }

// NumEdges returns the number of summary edges.
func (s *Summary) NumEdges() int {
	n := 0
	for _, es := range s.edges {
		n += len(es)
	}
	return n
}

// ApproxBytes estimates the summary's memory footprint for the
// preprocessing-overhead experiment.
func (s *Summary) ApproxBytes() int64 {
	return int64(len(s.bucketSize))*8 + int64(s.NumEdges())*24
}

// Name implements cardinality.Estimator.
func (*Summary) Name() string { return "SumRDF" }

// EstimateBGP returns the expected number of matches of the BGP over a
// random graph consistent with the summary.
func (s *Summary) EstimateBGP(q *sparql.Query) float64 {
	return s.estimatePatterns(q.Patterns)
}

func (s *Summary) estimatePatterns(patterns []sparql.TriplePattern) float64 {
	// Patterns with variable predicates are outside the summary model;
	// estimate them separately with global statistics and multiply.
	var inModel []sparql.TriplePattern
	factor := 1.0
	for _, tp := range patterns {
		if tp.P.IsVar() {
			ts := s.global.EstimateTP(nil, tp)
			factor *= ts.Card
			continue
		}
		inModel = append(inModel, tp)
	}
	if len(inModel) == 0 {
		return factor
	}
	budget := s.OpsBudget
	if budget <= 0 {
		budget = DefaultOpsBudget
	}
	s.lastOps = 0
	// Assignment state: variable → bucket.
	assign := map[string]int{}
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(inModel) {
			// product of bucket sizes over distinct variables
			prod := 1.0
			for _, b := range assign {
				prod *= s.bucketSize[b]
			}
			return prod
		}
		if s.lastOps > budget {
			return 0 // budget exhausted: cut off remaining embeddings
		}
		tp := inModel[i]
		p := tp.P.Term.Value
		es := s.edges[p]
		srcFixed, srcBucket := s.fixedBucket(tp.S, assign)
		dstFixed, dstBucket := s.fixedBucket(tp.O, assign)
		var total float64
		for _, e := range es {
			s.lastOps++
			if srcFixed && e.src != srcBucket {
				continue
			}
			if dstFixed && e.dst != dstBucket {
				continue
			}
			prob := e.weight / (s.bucketSize[e.src] * s.bucketSize[e.dst])
			if prob > 1 {
				prob = 1
			}
			// bind unbound variables for the recursive call
			var boundVars []string
			bindable := true
			if !srcFixed && tp.S.IsVar() {
				assign[tp.S.Var] = e.src
				boundVars = append(boundVars, tp.S.Var)
			}
			if !dstFixed && tp.O.IsVar() {
				if prev, ok := assign[tp.O.Var]; ok {
					if prev != e.dst {
						bindable = false
					}
				} else {
					assign[tp.O.Var] = e.dst
					boundVars = append(boundVars, tp.O.Var)
				}
			}
			if bindable {
				total += prob * rec(i+1)
			}
			for _, v := range boundVars {
				delete(assign, v)
			}
		}
		return total
	}
	// Variables contribute their bucket sizes at the leaves; constants
	// contribute exactly one node assignment, so no further factor: the
	// per-edge probability w/(|bs|·|bo|) already averages uniformly over
	// the constant's bucket (the summary keeps schema nodes in singleton
	// buckets, making those estimates exact rather than averaged).
	return rec(0) * factor
}

// Ops returns the number of embedding-enumeration steps the most recent
// estimate consumed — the estimation-cost measure reported by the
// preprocessing/ablation experiments.
func (s *Summary) Ops() int64 { return s.lastOps }

// fixedBucket resolves a pattern position to a fixed bucket: constants
// map through nodeBucket; already-assigned variables reuse their bucket.
func (s *Summary) fixedBucket(pt sparql.PatternTerm, assign map[string]int) (bool, int) {
	if pt.IsVar() {
		if b, ok := assign[pt.Var]; ok {
			return true, b
		}
		return false, 0
	}
	if b, ok := s.nodeBucket[termKey(pt.Term)]; ok {
		return true, b
	}
	return true, -1 // constant absent from the data: matches nothing
}

func termKey(t rdf.Term) string {
	return t.String()
}

// EstimateTP implements cardinality.Estimator for the planner adapter.
func (s *Summary) EstimateTP(q *sparql.Query, tp sparql.TriplePattern) cardinality.TPStats {
	base := s.global.EstimateTP(q, tp)
	card := s.estimatePatterns([]sparql.TriplePattern{tp})
	base.Card = card
	limit := card
	if limit < 1 {
		limit = 1
	}
	if base.DSC > limit {
		base.DSC = limit
	}
	if base.DOC > limit {
		base.DOC = limit
	}
	return base
}

// EstimatePair implements cardinality.PairEstimator: any two patterns
// with bound predicates are estimated jointly through the summary,
// capturing bucket-level correlation.
func (s *Summary) EstimatePair(q *sparql.Query, a, b sparql.TriplePattern) (float64, bool) {
	if a.P.IsVar() || b.P.IsVar() {
		return 0, false
	}
	if len(sparql.Joins(a, b)) == 0 {
		return 0, false
	}
	return s.estimatePatterns([]sparql.TriplePattern{a, b}), true
}

func fnv(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
