package sumrdf

import (
	"math"
	"testing"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

const ns = "http://x/"

func tinyGraph() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for _, s := range []string{"s1", "s2", "s3"} {
		g.Append(iri(s), typ, iri("Student"))
		g.Append(iri(s), iri("enrolled"), iri("uni"))
	}
	g.Append(iri("p1"), typ, iri("Prof"))
	g.Append(iri("p1"), iri("worksAt"), iri("uni"))
	return store.Load(g)
}

func tp(s, p, o string) sparql.TriplePattern {
	mk := func(x string) sparql.PatternTerm {
		if x[0] == '?' {
			return sparql.Variable(x[1:])
		}
		if x == "a" {
			return sparql.Bound(rdf.NewIRI(rdf.RDFType))
		}
		return sparql.Bound(rdf.NewIRI(ns + x))
	}
	return sparql.TriplePattern{S: mk(s), P: mk(p), O: mk(o)}
}

func TestBuildValidation(t *testing.T) {
	st := tinyGraph()
	g := gstats.Compute(st)
	if _, err := Build(st, g, 0); err == nil {
		t.Error("target size 0 accepted")
	}
	s, err := Build(st, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBuckets() == 0 || s.NumEdges() == 0 {
		t.Errorf("empty summary: %d buckets, %d edges", s.NumBuckets(), s.NumEdges())
	}
	if s.ApproxBytes() <= 0 {
		t.Error("ApproxBytes must be positive")
	}
	if s.Name() != "SumRDF" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestExactOnHomogeneousBuckets(t *testing.T) {
	st := tinyGraph()
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	// all students enrolled at the same uni: summary is exact here
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "a", "Student"),
		tp("?x", "enrolled", "?u"),
	}}
	got := s.EstimateBGP(q)
	if got != 3 {
		t.Errorf("estimate = %v, want exactly 3", got)
	}
}

func TestConstantAbsentFromData(t *testing.T) {
	st := tinyGraph()
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		tp("?x", "enrolled", "ghost"),
	}}
	if got := s.EstimateBGP(q); got != 0 {
		t.Errorf("estimate for absent constant = %v, want 0", got)
	}
}

func TestSummaryAccuracyOnLUBM(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	st := store.Load(g)
	gs := gstats.Compute(st)
	s, err := Build(st, gs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		 SELECT * WHERE { ?x a ub:GraduateStudent . ?x ub:advisor ?y . }`,
		`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		 SELECT * WHERE { ?x a ub:FullProfessor . ?x ub:teacherOf ?c . ?c a ub:GraduateCourse . }`,
	}
	for _, src := range queries {
		q := sparql.MustParse(src)
		est := s.EstimateBGP(q)
		er, err := engine.Run(st, q.Patterns, engine.Options{CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if qe := cardinality.QError(est, float64(er.Count)); qe > 5 {
			t.Errorf("q-error %v for %q (est %v, true %d)", qe, src, est, er.Count)
		}
	}
}

func TestSmallerSummaryCoarserEstimates(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	st := store.Load(g)
	gs := gstats.Compute(st)
	big, err := Build(st, gs, 4096)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Build(st, gs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumBuckets() >= big.NumBuckets() {
		t.Errorf("folding did not reduce buckets: %d vs %d", small.NumBuckets(), big.NumBuckets())
	}
	// both must still produce finite estimates
	q := sparql.MustParse(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE { ?x a ub:GraduateStudent . ?x ub:takesCourse ?c . }`)
	for _, s := range []*Summary{big, small} {
		est := s.EstimateBGP(q)
		if est <= 0 || math.IsInf(est, 0) || math.IsNaN(est) {
			t.Errorf("bad estimate %v at %d buckets", est, s.NumBuckets())
		}
	}
}

func TestEstimatePairRequiresSharedVarAndBoundPreds(t *testing.T) {
	st := tinyGraph()
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := &sparql.Query{}
	if _, ok := s.EstimatePair(q, tp("?x", "enrolled", "?u"), tp("?y", "worksAt", "?v")); ok {
		t.Error("disjoint pair estimated")
	}
	if _, ok := s.EstimatePair(q, tp("?x", "?p", "?u"), tp("?x", "worksAt", "?v")); ok {
		t.Error("variable-predicate pair estimated")
	}
	got, ok := s.EstimatePair(q, tp("?x", "enrolled", "?u"), tp("?u", "worksAt", "?v"))
	if !ok {
		t.Fatal("valid pair rejected")
	}
	if got < 0 {
		t.Errorf("pair estimate = %v", got)
	}
}

func TestEstimateTPClampsDistincts(t *testing.T) {
	st := tinyGraph()
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := s.EstimateTP(nil, tp("?x", "enrolled", "?u"))
	if ts.Card != 3 {
		t.Errorf("enrolled card = %v, want 3", ts.Card)
	}
	if ts.DSC > ts.Card || ts.DOC > ts.Card {
		t.Errorf("distincts exceed card: %+v", ts)
	}
}

func TestOpsBudgetCutsOff(t *testing.T) {
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 3})
	st := store.Load(g)
	s, err := Build(st, gstats.Compute(st), 4096)
	if err != nil {
		t.Fatal(err)
	}
	s.OpsBudget = 1
	q := sparql.MustParse(`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE {
			?x a ub:GraduateStudent . ?x ub:advisor ?y .
			?y ub:teacherOf ?c . ?x ub:takesCourse ?c .
		}`)
	_ = s.EstimateBGP(q)
	if s.Ops() < 1 {
		t.Error("ops not counted")
	}
	// A tiny budget must not panic and must return promptly; estimates
	// may be cut off (underestimates), which is the modeled behaviour.
}

func TestVariablePredicateFallback(t *testing.T) {
	st := tinyGraph()
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := &sparql.Query{Patterns: []sparql.TriplePattern{tp("?x", "?p", "?o")}}
	got := s.EstimateBGP(q)
	if got != 8 { // total triples via global fallback
		t.Errorf("variable-predicate estimate = %v, want 8", got)
	}
}

func TestRepeatedVariableWithinPattern(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	var g rdf.Graph
	g.Append(iri("n"), iri("p"), iri("n")) // self loop
	g.Append(iri("n"), iri("p"), iri("m"))
	st := store.Load(g)
	s, err := Build(st, gstats.Compute(st), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := &sparql.Query{Patterns: []sparql.TriplePattern{tp("?x", "p", "?x")}}
	got := s.EstimateBGP(q)
	if got <= 0 {
		t.Errorf("self-loop estimate = %v, want positive", got)
	}
}
