package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the handful of filesystem operations the durability layer
// performs, so tests can substitute an error- and crash-injecting
// implementation (MemFS) and drive the recovery code through every
// failure point a real disk has. Production code uses OsFS.
//
// The durability layer only ever works inside one directory; paths are
// passed fully joined.
type FS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// ReadDir returns the entry names of dir, in any order.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of a file.
	ReadFile(name string) ([]byte, error)
	// Create opens a file for writing, truncating any previous contents.
	Create(name string) (File, error)
	// Append opens a file for appending, creating it if missing.
	Append(name string) (File, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(dir string) error
}

// File is a writable file handle. Sync must not return until previously
// written bytes are on stable storage.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OsFS is the operating-system filesystem.
type OsFS struct{}

func (OsFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OsFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OsFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OsFS) Remove(name string) error { return os.Remove(name) }

func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir fsyncs the directory so entry changes (renames, creations)
// survive a power failure, not just the file contents.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
