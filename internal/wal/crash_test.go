package wal

import (
	"fmt"
	"reflect"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// The crash matrix: a fixed workload of appends and checkpoints runs
// against a MemFS that cuts power at operation k, for every k up to the
// clean run's operation count, under every CrashMode. Recovering the
// resulting disk image must always yield a state equal to some prefix of
// the attempted commit sequence, at least as long as the acknowledged
// one (under SyncAlways an acknowledgement means the record was fsynced,
// so it can never be lost). This is the subsystem's contract, proved by
// enumeration over every failure point the FS abstraction exposes.

// crashWorkload drives a deterministic sequence of commits: six inserts,
// one delete, with checkpoints after the third and sixth. It returns how
// many commits were acknowledged before the first failure.
func crashWorkload(fs *MemFS) (acked int) {
	attempted := crashAttempts()
	m, base, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		return 0
	}
	defer m.Close()
	cur := storeTriples(base)
	for _, b := range batches {
		applyBatch(cur, b)
	}
	for i, b := range attempted {
		if err := m.Append(b); err != nil {
			return acked
		}
		acked++
		applyBatch(cur, b)
		if i == 2 || i == 5 {
			// checkpoint failures are retryable, not fatal: the commit
			// was already acknowledged
			_, _ = m.Checkpoint(store.Load(graphOf(cur)).WriteSnapshot)
		}
	}
	return acked
}

// crashAttempts is the commit sequence crashWorkload attempts, in order.
func crashAttempts() []Batch {
	attempts := make([]Batch, 0, 7)
	for i := 0; i < 6; i++ {
		attempts = append(attempts, batchN(i))
	}
	attempts = append(attempts, Batch{Delete: batchN(1).Insert})
	return attempts
}

// prefixStates returns the triple set after each prefix of the attempts:
// states[k] is the state once the first k commits have applied.
func prefixStates(attempts []Batch) []map[rdf.Triple]bool {
	states := []map[rdf.Triple]bool{{}}
	cur := map[rdf.Triple]bool{}
	for _, b := range attempts {
		applyBatch(cur, b)
		next := make(map[rdf.Triple]bool, len(cur))
		for tr := range cur {
			next[tr] = true
		}
		states = append(states, next)
	}
	return states
}

// recoverAndCheck opens a crash image and asserts the recovered state is
// a prefix of the attempted sequence no shorter than the acknowledged
// one. It returns the recovered manager for follow-up writes.
func recoverAndCheck(t *testing.T, img *MemFS, acked int, label string) *Manager {
	t.Helper()
	m, base, batches, err := Open(testDir, Options{FS: img})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	got := storeTriples(base)
	for _, b := range batches {
		applyBatch(got, b)
	}
	states := prefixStates(crashAttempts())
	matched := -1
	for k := len(states) - 1; k >= 0; k-- {
		if reflect.DeepEqual(got, states[k]) {
			matched = k
			break
		}
	}
	if matched < 0 {
		t.Fatalf("%s: recovered state (%d triples) matches no prefix of the commit sequence", label, len(got))
	}
	if matched < acked {
		t.Fatalf("%s: recovered prefix %d shorter than %d acknowledged commits", label, matched, acked)
	}
	return m
}

func TestCrashMatrix(t *testing.T) {
	clean := NewMemFS()
	ackedClean := crashWorkload(clean)
	if want := len(crashAttempts()); ackedClean != want {
		t.Fatalf("clean run acknowledged %d/%d commits", ackedClean, want)
	}
	total := clean.Ops()
	if total < 30 {
		t.Fatalf("workload only exercises %d filesystem operations", total)
	}
	recoverAndCheck(t, clean.CrashImage(CrashKeepAll), ackedClean, "clean run")

	for _, mode := range []CrashMode{CrashSyncedOnly, CrashPartialTail, CrashKeepAll} {
		for k := 0; k < total; k++ {
			label := fmt.Sprintf("crash at op %d/%d, mode %s", k, total, mode)
			fs := NewMemFS()
			fs.StopAfter(k)
			acked := crashWorkload(fs)
			img := fs.CrashImage(mode)
			m := recoverAndCheck(t, img, acked, label)
			// the recovered directory must be fully writable: one more
			// commit, a checkpoint, and a second recovery round-trip
			extra := Batch{Insert: []rdf.Triple{rdf.NewTriple(
				rdf.NewIRI("http://x/post-crash"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("ok"),
			)}}
			if err := m.Append(extra); err != nil {
				t.Fatalf("%s: post-recovery append: %v", label, err)
			}
			m.Close()
			m2, base, batches, err := Open(testDir, Options{FS: img})
			if err != nil {
				t.Fatalf("%s: second recovery: %v", label, err)
			}
			got := storeTriples(base)
			for _, b := range batches {
				applyBatch(got, b)
			}
			if !got[extra.Insert[0]] {
				t.Fatalf("%s: post-recovery commit lost on reopen", label)
			}
			m2.Close()
		}
	}
}

// TestCrashDuringRecovery re-runs recovery itself under the crash
// matrix: a crash while Open is repairing the directory (removing
// leftovers, truncating torn tails, recreating the WAL) must leave it
// recoverable by the next attempt with the same guarantee.
func TestCrashDuringRecovery(t *testing.T) {
	// build a messy-but-recoverable image: crash mid-checkpoint with a
	// torn tail, the hardest directory shape recovery handles
	fs := NewMemFS()
	fs.StopAfter(25)
	acked := crashWorkload(fs)
	img := fs.CrashImage(CrashPartialTail)

	// count recovery's own mutating ops
	probe := img.CrashImage(CrashKeepAll)
	before := probe.Ops()
	if m := recoverAndCheck(t, probe, acked, "probe recovery"); m != nil {
		m.Close()
	}
	recOps := probe.Ops() - before

	for k := 0; k < recOps; k++ {
		attempt := img.CrashImage(CrashKeepAll)
		attempt.StopAfter(k)
		m, _, _, _ := Open(testDir, Options{FS: attempt})
		if m != nil {
			m.Close()
		}
		for _, mode := range []CrashMode{CrashSyncedOnly, CrashKeepAll} {
			second := attempt.CrashImage(mode)
			label := fmt.Sprintf("crash at recovery op %d/%d, mode %s", k, recOps, mode)
			if m := recoverAndCheck(t, second, acked, label); m != nil {
				m.Close()
			}
		}
	}
}
