// Package wal is the durability subsystem: an append-only, checksummed
// write-ahead log of committed update batches plus checkpointed store
// snapshots, giving the live dataset crash recovery with a hard
// guarantee — after any crash, reopening the directory recovers exactly
// a prefix of the acknowledged commit sequence, never a torn or
// reordered state. See docs/DURABILITY.md for format diagrams and the
// crash matrix.
//
// Directory layout (one generation per checkpoint):
//
//	snap-<gen>.snap   checkpointed dataset (store snapshot format, CRC32C)
//	wal-<gen>.log     commits applied after snap-<gen> was taken
//
// A checkpoint writes snap-<gen+1> to a temp file, fsyncs, renames it
// into place, fsyncs the directory, then starts wal-<gen+1>; the
// previous generation is retained until the next checkpoint so a corrupt
// newest snapshot can fall back one level. Recovery picks the newest
// snapshot that passes its checksum, replays the WAL generations from
// there, and truncates the log at the first torn or corrupt record
// instead of failing the boot.
//
// Generation pairing is the core invariant: wal-<gen>.log contains
// exactly the commits applied after snap-<gen>.snap was taken and
// before snap-<gen+1> existed, so (snapshot gen, logs ≥ gen in order)
// is always a replayable prefix of the acknowledged commit sequence.
// The pairing is what makes the snapshot fallback safe — falling back
// from a corrupt snap-<g> to snap-<g-1> just extends the replay to
// wal-<g-1> followed by wal-<g>, reproducing the same logical state.
// Two corollaries the code and the fault-injection tests enforce:
// the snapshot rename is the *only* operation that advances the
// generation (a crash on either side leaves the old pairing intact),
// and a log is never deleted before the snapshot that supersedes it is
// durable in the directory.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rdfshapes/internal/store"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log before every append returns: an
	// acknowledged commit survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the operating system: appends are
	// fast but commits acknowledged since the last fsync (checkpoint or
	// Close) can be lost in a crash — recovery still yields a clean
	// prefix, just possibly a shorter one.
	SyncNever
)

func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "never"
	}
	return "always"
}

// ParseSyncPolicy parses "always" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always or never)", s)
}

// Options configures a Manager.
type Options struct {
	// FS is the filesystem to operate on; nil selects OsFS. Tests
	// substitute MemFS to inject faults and simulated crashes.
	FS FS
	// Sync is the append fsync policy.
	Sync SyncPolicy
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OsFS{}
	}
	return o.FS
}

// Errors. ErrWALFailed poisons a Manager after an append could not be
// made durable: the in-memory dataset stays readable but further appends
// are refused, because acknowledging a commit the log may not hold would
// break the recovery guarantee. A successful Checkpoint clears the
// poison (the fresh snapshot re-establishes durability).
var (
	ErrWALFailed = errors.New("wal: log append failed; store is read-only until a successful checkpoint")
	ErrClosed    = errors.New("wal: manager is closed")
	ErrExists    = errors.New("wal: directory already contains durable state")
)

// RecoveryStats describes what Open found and repaired.
type RecoveryStats struct {
	// Recovered is true when existing durable state was opened (false:
	// the directory was empty and a fresh generation was initialized).
	Recovered bool
	// SnapshotGen is the generation of the snapshot recovered from.
	SnapshotGen uint64
	// SnapshotFallbacks counts corrupt snapshots skipped before a valid
	// one was found (the corrupt files are removed).
	SnapshotFallbacks int
	// RecordsReplayed counts WAL records replayed over the snapshot.
	RecordsReplayed int
	// TornTruncations counts torn or corrupt WAL tails truncated away.
	TornTruncations int
}

// Stats is a point-in-time view of the Manager, for observability.
type Stats struct {
	Gen         uint64
	LastSeq     uint64
	SizeBytes   int64 // active WAL file size, header included
	Appended    int64 // records appended since open
	Checkpoints int64 // checkpoints completed since open
	Failed      bool  // poisoned (see ErrWALFailed)
	Recovery    RecoveryStats
}

// Manager owns one durability directory: the active WAL generation plus
// the checkpointed snapshots. Append and Checkpoint are serialized by
// the caller's commit lock in normal operation, but the Manager also
// locks internally so misuse cannot corrupt the log.
type Manager struct {
	fs  FS
	dir string
	pol SyncPolicy

	mu          sync.Mutex
	f           File // active WAL, append position at end
	gen         uint64
	seq         uint64 // last sequence number appended or replayed
	size        int64  // active WAL size in bytes
	appended    int64
	checkpoints int64
	failed      error // first durability failure; nil when healthy
	rec         RecoveryStats
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snap", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016d.log", gen) }

// parseGen extracts the generation from a snap-/wal- file name; ok is
// false for names that are not exactly in the expected form.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 16 {
		return 0, false
	}
	var gen uint64
	for _, d := range digits {
		if d < '0' || d > '9' {
			return 0, false
		}
		gen = gen*10 + uint64(d-'0')
	}
	return gen, true
}

// HasState reports whether dir holds durable state (any snapshot or WAL
// file). A missing directory is simply empty.
func HasState(dir string, fs FS) (bool, error) {
	if fs == nil {
		fs = OsFS{}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return false, nil // missing or unreadable: treated as no state
	}
	for _, n := range names {
		if _, ok := parseGen(n, "snap-", ".snap"); ok {
			return true, nil
		}
		if _, ok := parseGen(n, "wal-", ".log"); ok {
			return true, nil
		}
	}
	return false, nil
}

// Create initializes a fresh durability directory whose first checkpoint
// is written by write (typically store.WriteSnapshot of the just-loaded
// dataset). It fails with ErrExists when the directory already holds
// durable state, so attaching durability can never silently discard it.
func Create(dir string, opts Options, write func(io.Writer) error) (*Manager, error) {
	fs := opts.fs()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	if has, _ := HasState(dir, fs); has {
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	}
	m := &Manager{fs: fs, dir: dir, pol: opts.Sync}
	if err := m.initialize(1, write); err != nil {
		return nil, err
	}
	return m, nil
}

// Open recovers a durability directory: it loads the newest valid
// snapshot (falling back past corrupt ones), collects the WAL batches to
// replay over it, truncates any torn tail, and leaves the Manager ready
// to append. An empty directory is initialized with an empty dataset.
// The caller replays the returned batches — in order, without re-logging
// them — before serving traffic.
func Open(dir string, opts Options) (*Manager, *store.Store, []Batch, error) {
	fs := opts.fs()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}

	snaps := map[uint64]bool{}
	wals := map[uint64]bool{}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			_ = fs.Remove(filepath.Join(dir, n)) // interrupted checkpoint leftovers
			continue
		}
		if g, ok := parseGen(n, "snap-", ".snap"); ok {
			snaps[g] = true
		}
		if g, ok := parseGen(n, "wal-", ".log"); ok {
			wals[g] = true
		}
	}

	m := &Manager{fs: fs, dir: dir, pol: opts.Sync}

	if len(snaps) == 0 {
		if len(wals) > 0 {
			return nil, nil, nil, fmt.Errorf("wal: %s has WAL files but no snapshot; refusing to guess a base state", dir)
		}
		empty := store.New()
		empty.Freeze()
		if err := m.initialize(1, empty.WriteSnapshot); err != nil {
			return nil, nil, nil, err
		}
		return m, empty, nil, nil
	}

	// Newest snapshot that passes its integrity check wins; corrupt ones
	// are removed so the next recovery does not trip over them again.
	snapGens := sortedGens(snaps)
	var base *store.Store
	var sgen uint64
	for i := len(snapGens) - 1; i >= 0; i-- {
		g := snapGens[i]
		data, rerr := fs.ReadFile(filepath.Join(dir, snapName(g)))
		if rerr == nil {
			st, derr := store.ReadSnapshot(bytes.NewReader(data))
			if derr == nil {
				base, sgen = st, g
				break
			}
		}
		m.rec.SnapshotFallbacks++
		_ = fs.Remove(filepath.Join(dir, snapName(g)))
	}
	if base == nil {
		return nil, nil, nil, fmt.Errorf("wal: every snapshot in %s is corrupt; cannot establish a base state", dir)
	}
	m.rec.Recovered = true
	m.rec.SnapshotGen = sgen

	// Replay WAL generations contiguously from the snapshot's. A torn
	// record ends replay: everything behind it is truncated or removed,
	// because records past a tear are not a prefix of the commit order.
	var batches []Batch
	lastSeq := uint64(0)
	activeGen := sgen
	activeSize := int64(walHeaderLen)
	stop := false
	for g := sgen; ; g++ {
		if !wals[g] {
			break
		}
		if stop {
			_ = fs.Remove(filepath.Join(dir, walName(g)))
			continue
		}
		path := filepath.Join(dir, walName(g))
		data, rerr := fs.ReadFile(path)
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("wal: reading %s: %w", path, rerr)
		}
		hdrGen, herr := decodeHeader(data)
		if herr != nil || hdrGen != g {
			// The header itself is torn (a crash during WAL creation) or
			// the file is not ours: it holds nothing replayable. Recreate
			// it empty; anything it contained was never acknowledged.
			if err := m.recreateWAL(g); err != nil {
				return nil, nil, nil, err
			}
			m.rec.TornTruncations++
			activeGen, activeSize = g, int64(walHeaderLen)
			stop = true
			continue
		}
		n, tear := scanRecords(data[walHeaderLen:], func(seq uint64, b Batch) error {
			if seq <= lastSeq {
				return fmt.Errorf("wal: sequence %d not after %d", seq, lastSeq)
			}
			lastSeq = seq
			batches = append(batches, b)
			return nil
		})
		prefix := int64(walHeaderLen + n)
		activeGen, activeSize = g, prefix
		if tear != nil {
			if err := fs.Truncate(path, prefix); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			m.rec.TornTruncations++
			stop = true
		}
	}
	m.rec.RecordsReplayed = len(batches)

	// Snapshots newer than where replay ended are unreachable forward
	// states (their WAL is gone or was dropped); remove them so they can
	// never shadow the recovered prefix.
	for _, g := range snapGens {
		if g > activeGen {
			_ = fs.Remove(filepath.Join(dir, snapName(g)))
		}
	}

	if !wals[activeGen] {
		// Crash between a checkpoint's snapshot rename and its WAL
		// creation: the snapshot is complete and authoritative, the WAL
		// just needs to exist.
		if err := m.recreateWAL(activeGen); err != nil {
			return nil, nil, nil, err
		}
		activeSize = int64(walHeaderLen)
	} else {
		f, err := fs.Append(filepath.Join(dir, walName(activeGen)))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wal: opening active log: %w", err)
		}
		m.f = f
	}
	m.gen = activeGen
	m.seq = lastSeq
	m.size = activeSize
	m.prune()
	return m, base, batches, nil
}

// sortedGens returns the keys of a generation set in ascending order.
func sortedGens(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recreateWAL replaces wal-<gen> with a fresh, fsynced, header-only file
// and makes it the active log.
func (m *Manager) recreateWAL(gen uint64) error {
	path := filepath.Join(m.dir, walName(gen))
	f, err := m.fs.Create(path)
	if err != nil {
		return fmt.Errorf("wal: recreating %s: %w", path, err)
	}
	if _, err := f.Write(encodeHeader(gen)); err != nil {
		f.Close()
		return fmt.Errorf("wal: recreating %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: recreating %s: %w", path, err)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: recreating %s: %w", path, err)
	}
	if m.f != nil {
		m.f.Close()
	}
	m.f = f
	return nil
}

// initialize writes the first checkpoint (snapshot + empty WAL) of a
// fresh directory at the given generation.
func (m *Manager) initialize(gen uint64, write func(io.Writer) error) error {
	if err := m.writeSnapshot(gen, write); err != nil {
		return err
	}
	if err := m.recreateWAL(gen); err != nil {
		return err
	}
	m.gen = gen
	m.size = int64(walHeaderLen)
	return nil
}

// writeSnapshot durably installs snap-<gen>: temp file, fsync, rename,
// directory fsync — the previous snapshot is never touched.
func (m *Manager) writeSnapshot(gen uint64, write func(io.Writer) error) error {
	final := filepath.Join(m.dir, snapName(gen))
	tmp := final + ".tmp"
	f, err := m.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		_ = m.fs.Remove(tmp)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = m.fs.Remove(tmp)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = m.fs.Remove(tmp)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := m.fs.Rename(tmp, final); err != nil {
		_ = m.fs.Remove(tmp)
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		_ = m.fs.Remove(final)
		return fmt.Errorf("wal: syncing snapshot directory: %w", err)
	}
	return nil
}

// Append logs one committed batch. Under SyncAlways it returns only
// after the record is on stable storage; the caller acknowledges the
// commit afterwards, which is what makes recovery a superset of every
// acknowledgement. A failure poisons the Manager (ErrWALFailed).
func (m *Manager) Append(b Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return ErrClosed
	}
	if m.failed != nil {
		return fmt.Errorf("%w (cause: %v)", ErrWALFailed, m.failed)
	}
	m.seq++
	rec := encodeRecord(m.seq, b)
	if _, err := m.f.Write(rec); err != nil {
		m.failed = err
		return fmt.Errorf("%w (cause: %v)", ErrWALFailed, err)
	}
	if m.pol == SyncAlways {
		if err := m.f.Sync(); err != nil {
			m.failed = err
			return fmt.Errorf("%w (cause: %v)", ErrWALFailed, err)
		}
	}
	m.size += int64(len(rec))
	m.appended++
	return nil
}

// Checkpoint installs a new generation: write writes the full current
// dataset (the caller must hold its commit lock so no append can land
// between the snapshot contents and the log rotation), then the WAL is
// rotated and generations older than the previous one are pruned. On
// success the poison flag is cleared — the fresh snapshot restored
// durability. Returns the new generation.
func (m *Manager) Checkpoint(write func(io.Writer) error) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return 0, ErrClosed
	}
	newGen := m.gen + 1
	if err := m.writeSnapshot(newGen, write); err != nil {
		return 0, err // nothing installed; the old generation stays authoritative
	}
	// From here the new snapshot is durable and would win recovery: the
	// rotation must complete, or the snapshot must be removed, before
	// any further append — otherwise post-checkpoint commits would land
	// in a log generation recovery no longer reads.
	if err := m.rotateWAL(newGen); err != nil {
		if rerr := m.fs.Remove(filepath.Join(m.dir, snapName(newGen))); rerr != nil {
			m.failed = fmt.Errorf("checkpoint rotation failed (%v) and snapshot rollback failed (%v)", err, rerr)
		}
		return 0, fmt.Errorf("wal: rotating log: %w", err)
	}
	m.gen = newGen
	m.size = int64(walHeaderLen)
	m.checkpoints++
	m.failed = nil
	m.prune()
	return newGen, nil
}

// rotateWAL starts wal-<gen> and makes it the active log.
func (m *Manager) rotateWAL(gen uint64) error {
	path := filepath.Join(m.dir, walName(gen))
	f, err := m.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeHeader(gen)); err != nil {
		f.Close()
		_ = m.fs.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = m.fs.Remove(path)
		return err
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		f.Close()
		_ = m.fs.Remove(path)
		return err
	}
	old := m.f
	m.f = f
	if old != nil {
		old.Close() // obsolete generation; nothing in it is needed anymore
	}
	return nil
}

// prune removes generations older than the previous one (kept as the
// corrupt-snapshot fallback). Best effort: a leftover file is re-pruned
// on the next checkpoint or open. Called with m.mu held.
func (m *Manager) prune() {
	if m.gen < 2 {
		return
	}
	keep := m.gen - 1
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if g, ok := parseGen(n, "snap-", ".snap"); ok && g < keep {
			_ = m.fs.Remove(filepath.Join(m.dir, n))
		}
		if g, ok := parseGen(n, "wal-", ".log"); ok && g < keep {
			_ = m.fs.Remove(filepath.Join(m.dir, n))
		}
	}
}

// Close syncs and closes the active log. Further appends fail with
// ErrClosed. Idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	var err error
	if m.failed == nil {
		err = m.f.Sync() // flush SyncNever tails so a clean shutdown loses nothing
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}

// Stats returns a point-in-time view for observability surfaces.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Gen:         m.gen,
		LastSeq:     m.seq,
		SizeBytes:   m.size,
		Appended:    m.appended,
		Checkpoints: m.checkpoints,
		Failed:      m.failed != nil,
		Recovery:    m.rec,
	}
}

// Recovery returns what Open found and repaired.
func (m *Manager) Recovery() RecoveryStats { return m.rec }

// Dir returns the durability directory.
func (m *Manager) Dir() string { return m.dir }
