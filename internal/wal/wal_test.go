package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

const testDir = "/data"

// batchN builds a deterministic single-insert batch.
func batchN(i int) Batch {
	return Batch{Insert: []rdf.Triple{rdf.NewTriple(
		rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
		rdf.NewIRI("http://x/p"),
		rdf.NewLiteral(fmt.Sprintf("v%d", i)),
	)}}
}

// graphOf builds a graph holding every triple in set.
func graphOf(set map[rdf.Triple]bool) rdf.Graph {
	var g rdf.Graph
	for tr := range set {
		g.Append(tr.S, tr.P, tr.O)
	}
	return g
}

// applyBatch folds a batch into a triple set (insert-then-delete, the
// live store's set semantics).
func applyBatch(set map[rdf.Triple]bool, b Batch) {
	for _, tr := range b.Insert {
		set[tr] = true
	}
	for _, tr := range b.Delete {
		delete(set, tr)
	}
}

// storeTriples extracts a store's contents as a term-level triple set.
func storeTriples(st *store.Store) map[rdf.Triple]bool {
	out := map[rdf.Triple]bool{}
	st.Scan(store.IDTriple{}, func(tr store.IDTriple) bool {
		out[rdf.Triple{S: st.Dict().Term(tr.S), P: st.Dict().Term(tr.P), O: st.Dict().Term(tr.O)}] = true
		return true
	})
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	b := Batch{
		Insert: []rdf.Triple{
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLangLiteral("hej", "da")),
			rdf.NewTriple(rdf.NewBlank("n1"), rdf.NewIRI("http://x/q"), rdf.NewTypedLiteral("5", rdf.XSDInteger)),
		},
		Delete: []rdf.Triple{
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("x\ny")),
		},
	}
	rec := encodeRecord(42, b)
	var got []Batch
	var gotSeq uint64
	n, tear := scanRecords(rec, func(seq uint64, b Batch) error {
		gotSeq = seq
		got = append(got, b)
		return nil
	})
	if tear != nil {
		t.Fatalf("tear on valid record: %v", tear)
	}
	if n != len(rec) {
		t.Fatalf("valid prefix %d, want %d", n, len(rec))
	}
	if gotSeq != 42 {
		t.Errorf("seq = %d, want 42", gotSeq)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], b) {
		t.Errorf("batch did not round-trip: %+v", got)
	}
}

func TestScanRecordsTornTails(t *testing.T) {
	var data []byte
	for i := 0; i < 3; i++ {
		data = append(data, encodeRecord(uint64(i+1), batchN(i))...)
	}
	// every proper prefix must replay a record-aligned prefix and report
	// a tear when it cuts a record
	bounds := map[int]bool{0: true}
	off := 0
	for i := 0; i < 3; i++ {
		off += len(encodeRecord(uint64(i+1), batchN(i)))
		bounds[off] = true
	}
	for cut := 0; cut <= len(data); cut++ {
		n, tear := scanRecords(data[:cut], func(uint64, Batch) error { return nil })
		if !bounds[n] {
			t.Fatalf("cut %d: valid prefix %d is not a record boundary", cut, n)
		}
		if bounds[cut] && tear != nil {
			t.Fatalf("cut %d on boundary: unexpected tear %v", cut, tear)
		}
		if !bounds[cut] && tear == nil {
			t.Fatalf("cut %d mid-record: no tear reported", cut)
		}
	}
	// a flipped byte anywhere must stop the scan at or before that record
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x20
		n, _ := scanRecords(mutated, func(uint64, Batch) error { return nil })
		if !bounds[n] {
			t.Fatalf("flip %d: valid prefix %d is not a record boundary", i, n)
		}
		if n > i {
			t.Fatalf("flip at %d: prefix %d includes corrupt byte", i, n)
		}
	}
}

func TestOpenEmptyDirInitializes(t *testing.T) {
	fs := NewMemFS()
	m, base, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if base.Len() != 0 || len(batches) != 0 {
		t.Fatalf("fresh open: %d triples, %d batches", base.Len(), len(batches))
	}
	st := m.Stats()
	if st.Gen != 1 || st.Recovery.Recovered {
		t.Errorf("fresh open stats: %+v", st)
	}
	want := []string{
		filepath.Join(testDir, snapName(1)),
		filepath.Join(testDir, walName(1)),
	}
	if got := fs.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("files = %v, want %v", got, want)
	}
}

func TestAppendReopenReplaysAll(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var acked []Batch
	for i := 0; i < 5; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, batchN(i))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, base, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if base.Len() != 0 {
		t.Errorf("base has %d triples, want 0", base.Len())
	}
	if !reflect.DeepEqual(batches, acked) {
		t.Errorf("replayed %d batches, want %d identical", len(batches), len(acked))
	}
	st := m2.Stats()
	if !st.Recovery.Recovered || st.Recovery.RecordsReplayed != 5 || st.LastSeq != 5 {
		t.Errorf("recovery stats: %+v", st)
	}
	// sequence numbers continue after recovery
	if err := m2.Append(batchN(9)); err != nil {
		t.Fatal(err)
	}
	if got := m2.Stats().LastSeq; got != 6 {
		t.Errorf("LastSeq after post-recovery append = %d, want 6", got)
	}
}

func TestCheckpointRotatesPrunesAndReplaysTail(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	cur := map[rdf.Triple]bool{}
	for i := 0; i < 3; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
		applyBatch(cur, batchN(i))
	}
	gen, err := m.Checkpoint(store.Load(graphOf(cur)).WriteSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("checkpoint gen = %d, want 2", gen)
	}
	for i := 3; i < 5; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
		applyBatch(cur, batchN(i))
	}
	if _, err := m.Checkpoint(store.Load(graphOf(cur)).WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(batchN(5)); err != nil {
		t.Fatal(err)
	}
	applyBatch(cur, batchN(5))
	m.Close()

	// generation 1 must be pruned, generation 2 kept as fallback
	want := []string{
		filepath.Join(testDir, snapName(2)),
		filepath.Join(testDir, snapName(3)),
		filepath.Join(testDir, walName(2)),
		filepath.Join(testDir, walName(3)),
	}
	if got := fs.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("files after two checkpoints = %v, want %v", got, want)
	}

	m2, base, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(batches) != 1 || !reflect.DeepEqual(batches[0], batchN(5)) {
		t.Fatalf("replayed %d batches, want just the post-checkpoint one", len(batches))
	}
	got := storeTriples(base)
	applyBatch(got, batches[0])
	if !reflect.DeepEqual(got, cur) {
		t.Errorf("recovered state differs: %d triples, want %d", len(got), len(cur))
	}
	if g := m2.Stats().Recovery.SnapshotGen; g != 3 {
		t.Errorf("recovered from snapshot gen %d, want 3", g)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	// corrupt a byte inside the last record
	if err := fs.Corrupt(filepath.Join(testDir, walName(1)), -3, 0x10); err != nil {
		t.Fatal(err)
	}
	m2, _, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("replayed %d batches past a corrupt tail, want 2", len(batches))
	}
	if tt := m2.Stats().Recovery.TornTruncations; tt != 1 {
		t.Errorf("TornTruncations = %d, want 1", tt)
	}
	// the tail was truncated: appending and reopening must yield exactly
	// the two survivors plus the new record, with no corruption in between
	if err := m2.Append(batchN(7)); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, _, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	want := []Batch{batchN(0), batchN(1), batchN(7)}
	if !reflect.DeepEqual(batches, want) {
		t.Errorf("after truncate+append, replay = %+v, want %+v", batches, want)
	}
	if tt := m3.Stats().Recovery.TornTruncations; tt != 0 {
		t.Errorf("second recovery still truncating: %d", tt)
	}
}

func TestStaleSequenceNumberTreatedAsCorruption(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(batchN(0)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// forge a record whose sequence number does not advance
	f, err := fs.Append(filepath.Join(testDir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeRecord(1, batchN(1))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m2, _, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(batches) != 1 || !reflect.DeepEqual(batches[0], batchN(0)) {
		t.Fatalf("stale-seq record replayed: %+v", batches)
	}
	if tt := m2.Stats().Recovery.TornTruncations; tt != 1 {
		t.Errorf("TornTruncations = %d, want 1", tt)
	}
}

func TestCorruptSnapshotFallsBackOneGeneration(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	cur := map[rdf.Triple]bool{}
	for i := 0; i < 2; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
		applyBatch(cur, batchN(i))
	}
	if _, err := m.Checkpoint(store.Load(graphOf(cur)).WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(batchN(2)); err != nil {
		t.Fatal(err)
	}
	applyBatch(cur, batchN(2))
	m.Close()
	// rot the newest snapshot: recovery must fall back to generation 1
	// and rebuild the same state from its WAL trail
	if err := fs.Corrupt(filepath.Join(testDir, snapName(2)), -1, 0x01); err != nil {
		t.Fatal(err)
	}
	m2, base, batches, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Stats().Recovery
	if rec.SnapshotFallbacks != 1 || rec.SnapshotGen != 1 {
		t.Errorf("recovery stats: %+v", rec)
	}
	got := storeTriples(base)
	for _, b := range batches {
		applyBatch(got, b)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Errorf("fallback recovery lost state: %d triples, want %d", len(got), len(cur))
	}
	// the corrupt snapshot is gone; the next recovery is clean
	m2.Close()
	m3, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if fb := m3.Stats().Recovery.SnapshotFallbacks; fb != 0 {
		t.Errorf("corrupt snapshot not removed: %d fallbacks on reopen", fb)
	}
}

func TestAppendFailurePoisonsUntilCheckpoint(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Append(batchN(0)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	fs.FailOn = FailNth(0, "sync", boom)
	if err := m.Append(batchN(1)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append with failing sync: %v, want ErrWALFailed", err)
	}
	fs.FailOn = nil
	// poisoned: even healthy appends are refused
	if err := m.Append(batchN(2)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append while poisoned: %v, want ErrWALFailed", err)
	}
	if !m.Stats().Failed {
		t.Error("Stats().Failed = false while poisoned")
	}
	// a successful checkpoint re-establishes durability
	cur := map[rdf.Triple]bool{}
	applyBatch(cur, batchN(0))
	if _, err := m.Checkpoint(store.Load(graphOf(cur)).WriteSnapshot); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Failed {
		t.Error("still poisoned after successful checkpoint")
	}
	if err := m.Append(batchN(3)); err != nil {
		t.Fatalf("append after recovery checkpoint: %v", err)
	}
}

func TestCheckpointSnapshotFailureLeavesOldGeneration(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Append(batchN(0)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("enospc")
	fs.FailOn = func(op, name string) error {
		if op == "write" && filepath.Ext(name) == ".tmp" {
			return boom
		}
		return nil
	}
	if _, err := m.Checkpoint(store.Load(graphOf(nil)).WriteSnapshot); err == nil {
		t.Fatal("checkpoint with failing snapshot write succeeded")
	}
	fs.FailOn = nil
	// the failure is retryable: the old generation is intact and appends
	// still work
	if err := m.Append(batchN(1)); err != nil {
		t.Fatalf("append after failed checkpoint: %v", err)
	}
	if st := m.Stats(); st.Gen != 1 || st.Failed {
		t.Errorf("stats after failed checkpoint: %+v", st)
	}
}

func TestCreateRefusesExistingState(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := Create(testDir, Options{FS: fs}, store.Load(graphOf(nil)).WriteSnapshot); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over existing state: %v, want ErrExists", err)
	}
}

func TestHasState(t *testing.T) {
	fs := NewMemFS()
	if has, _ := HasState(testDir, fs); has {
		t.Error("HasState on missing dir = true")
	}
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if has, _ := HasState(testDir, fs); !has {
		t.Error("HasState after init = false")
	}
}

func TestClosedManagerRefusesWork(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Append(batchN(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Append on closed manager: %v", err)
	}
	if _, err := m.Checkpoint(func(io.Writer) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint on closed manager: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "": SyncAlways, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

func TestSyncNeverLosesOnlyUnsyncedTail(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// no Close: simulate a crash with the page cache gone
	img := fs.CrashImage(CrashSyncedOnly)
	m2, base, batches, err := Open(testDir, Options{FS: img})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if base.Len() != 0 {
		t.Errorf("base has %d triples", base.Len())
	}
	// under SyncNever none of the appends were acknowledged durable, so
	// losing all of them is within contract — but what survives must
	// still be a prefix
	for i, b := range batches {
		if !reflect.DeepEqual(b, batchN(i)) {
			t.Fatalf("batch %d out of order after SyncNever crash", i)
		}
	}
	// a clean Close, by contrast, flushes everything
	m3, _, _, err := Open(testDir, Options{FS: fs, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m3.Close()
}

func TestCloseFlushesSyncNeverTail(t *testing.T) {
	fs := NewMemFS()
	m, _, _, err := Open(testDir, Options{FS: fs, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	img := fs.CrashImage(CrashSyncedOnly)
	m2, _, batches, err := Open(testDir, Options{FS: img})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(batches) != 3 {
		t.Errorf("clean shutdown lost records: %d/3 replayed", len(batches))
	}
}
