package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
)

// Log shipping: the replication read surface of a Manager. A follower
// (internal/repl) asks for "everything after (generation, seq)" and the
// primary answers with one Segment per on-disk WAL generation from the
// requested one to the current one — each holding the framed records
// with a sequence number past the follower's high-water mark. Because
// wal-<gen>.log contains exactly the commits applied after snap-<gen>
// was taken, a follower that loads snap-<gen> and then tails from
// (gen, 0) replays precisely the primary's acknowledged commit
// sequence, in order, with no gap and no duplicate.
//
// Checkpoints prune generations older than gen-1, so a follower that
// falls more than one checkpoint behind asks for a generation that no
// longer exists: ReadSegments answers ErrGenPruned and the follower
// restarts from a fresh snapshot (SnapshotData) instead.

// ErrGenPruned reports that the requested WAL generation has been
// checkpointed away; the follower must re-bootstrap from the current
// snapshot. Test with errors.Is.
var ErrGenPruned = errors.New("wal: requested generation has been pruned; bootstrap from the current snapshot")

// Segment is one generation's worth of shipped records: the framed
// record bytes (the WAL file contents after its header, filtered to
// sequence numbers past the follower's high-water mark). Records may be
// empty — an empty segment still tells the follower the generation
// exists, which is how it learns about a rotation with no commits yet.
type Segment struct {
	Gen     uint64
	Records []byte
}

// ReadSegments returns the shippable log suffix after (fromGen,
// fromSeq): one Segment per generation from fromGen through the current
// one, each carrying the valid framed records with seq > fromSeq. The
// current generation and last appended sequence number are returned so
// the follower can tell whether it has caught up. ErrGenPruned is
// returned when fromGen is no longer on disk (or is from a future the
// primary never had — a divergent follower must also re-bootstrap).
//
// The active file is read while appends continue; scanning stops at the
// first torn frame, so a read racing an in-flight append simply serves
// a slightly shorter — still valid — prefix.
func (m *Manager) ReadSegments(fromGen, fromSeq uint64) ([]Segment, uint64, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil, 0, 0, ErrClosed
	}
	if fromGen > m.gen || fromGen == 0 {
		return nil, m.gen, m.seq, fmt.Errorf("%w (requested %d, current %d)", ErrGenPruned, fromGen, m.gen)
	}
	var segs []Segment
	for g := fromGen; g <= m.gen; g++ {
		data, err := m.fs.ReadFile(filepath.Join(m.dir, walName(g)))
		if err != nil {
			if g == fromGen {
				return nil, m.gen, m.seq, fmt.Errorf("%w (requested %d, current %d)", ErrGenPruned, fromGen, m.gen)
			}
			// A gap after the first generation would break replay order;
			// it cannot happen in a healthy directory (rotation creates
			// the file before the generation advances).
			return nil, m.gen, m.seq, fmt.Errorf("wal: generation %d missing mid-ship", g)
		}
		if hdrGen, err := decodeHeader(data); err != nil || hdrGen != g {
			return nil, m.gen, m.seq, fmt.Errorf("wal: shipping %s: bad header", walName(g))
		}
		segs = append(segs, Segment{Gen: g, Records: recordsAfter(data[walHeaderLen:], fromSeq)})
	}
	return segs, m.gen, m.seq, nil
}

// recordsAfter returns the byte range of the valid record prefix of data
// whose sequence numbers exceed fromSeq. Sequence numbers are strictly
// increasing within a file, so the result is a contiguous suffix of the
// valid prefix.
func recordsAfter(data []byte, fromSeq uint64) []byte {
	start := -1
	end, _ := scanRecords(data, func(seq uint64, b Batch) error {
		return nil
	})
	off := 0
	for off < end {
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		seq, _ := binary.Uvarint(data[off+frameLen:])
		if seq > fromSeq {
			start = off
			break
		}
		off += frameLen + plen
	}
	if start < 0 {
		return nil
	}
	out := make([]byte, end-start)
	copy(out, data[start:end])
	return out
}

// SnapshotData returns the current generation's durable snapshot bytes,
// for streaming to a bootstrapping follower. The snapshot at generation
// g pairs with tailing from (g, 0).
func (m *Manager) SnapshotData() (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return 0, nil, ErrClosed
	}
	data, err := m.fs.ReadFile(filepath.Join(m.dir, snapName(m.gen)))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: reading snapshot for shipping: %w", err)
	}
	return m.gen, data, nil
}

// Segment wire format, used by the /repl/wal response body:
//
//	segment := magic "RPLSEG01" (8 bytes) | gen (8 bytes LE)
//	           | recordsLen (8 bytes LE) | records
//	records  := framed WAL records (len | crc32c | payload), as on disk
//
// Segments are self-delimiting, so a torn response decodes to a valid
// prefix: DecodeSegments replays every complete record it can prove
// intact and reports the tear, and the follower — which tracks its
// applied sequence number — simply re-requests from where it stopped.

const segMagic = "RPLSEG01"

var errSegTorn = errors.New("wal: torn segment stream")

// IsTorn reports whether a DecodeSegments error marks a truncated or
// corrupt stream tail — the expected outcome of a connection cut mid-
// ship, recoverable by re-requesting from the last applied offset.
func IsTorn(err error) bool { return errors.Is(err, errSegTorn) }

// EncodeSegments renders segments in the wire format.
func EncodeSegments(segs []Segment) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, segMagic...)
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:8], s.Gen)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(s.Records)))
		out = append(out, hdr[:]...)
		out = append(out, s.Records...)
	}
	return out
}

// DecodeSegments walks an encoded segment stream, calling fn for every
// intact record with its generation and sequence number, and gen for
// every segment header (including empty segments, so a follower's
// generation cursor advances past commit-free rotations). A torn or
// corrupt tail stops the walk with an IsTorn error after every complete
// record before the tear has been delivered; an error from fn stops the
// walk and is returned as-is.
func DecodeSegments(data []byte, gen func(g uint64), fn func(g, seq uint64, b Batch) error) error {
	off := 0
	for off < len(data) {
		if len(data)-off < len(segMagic)+16 {
			return fmt.Errorf("%w: truncated segment header at offset %d", errSegTorn, off)
		}
		if string(data[off:off+len(segMagic)]) != segMagic {
			return fmt.Errorf("%w: bad segment magic at offset %d", errSegTorn, off)
		}
		g := binary.LittleEndian.Uint64(data[off+8 : off+16])
		n := binary.LittleEndian.Uint64(data[off+16 : off+24])
		off += len(segMagic) + 16
		if n > uint64(len(data)-off) {
			// The segment body is cut short: replay what is intact.
			if gen != nil {
				gen(g)
			}
			var ferr error
			_, tear := scanRecords(data[off:], func(seq uint64, b Batch) error {
				ferr = fn(g, seq, b)
				return ferr
			})
			if ferr != nil {
				return ferr
			}
			_ = tear // a tear here is expected; the header already lied
			return fmt.Errorf("%w: truncated segment body at offset %d", errSegTorn, off)
		}
		if gen != nil {
			gen(g)
		}
		var ferr error
		valid, tear := scanRecords(data[off:off+int(n)], func(seq uint64, b Batch) error {
			ferr = fn(g, seq, b)
			return ferr
		})
		if ferr != nil {
			return ferr
		}
		if tear != nil || valid != int(n) {
			return fmt.Errorf("%w: corrupt records in segment gen %d: %v", errSegTorn, g, tear)
		}
		off += int(n)
	}
	return nil
}
