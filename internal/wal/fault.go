package wal

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// This file is the fault-injection harness: an in-memory FS that models
// what a real disk guarantees (and, more importantly, what it does not).
// File bytes become durable only on Sync; directory entries — creations,
// renames, removals — become durable only on SyncDir. A simulated crash
// (CrashImage) discards everything else, which is exactly the adversary
// the recovery code has to beat. It is exported (not _test.go) so the
// facade's crash-matrix tests can drive the whole stack through it.

// ErrPowerLost is returned by every filesystem operation at and after
// the injected crash point.
var ErrPowerLost = fmt.Errorf("wal: simulated power loss")

// CrashMode selects how much non-durable state survives a simulated
// crash. Real crashes land anywhere in this range, so the crash matrix
// runs every failure point under all three.
type CrashMode int

const (
	// CrashSyncedOnly keeps only fsynced bytes and dir-synced names:
	// the worst permitted outcome.
	CrashSyncedOnly CrashMode = iota
	// CrashPartialTail keeps dir-synced names and half of each file's
	// unsynced tail: torn records.
	CrashPartialTail
	// CrashKeepAll keeps everything in memory: the OS flushed caches
	// before power died.
	CrashKeepAll
)

func (m CrashMode) String() string {
	switch m {
	case CrashSyncedOnly:
		return "synced-only"
	case CrashPartialTail:
		return "partial-tail"
	default:
		return "keep-all"
	}
}

// memNode is one file's contents plus its durable prefix.
type memNode struct {
	data      []byte
	syncedLen int
}

// MemFS is an in-memory FS with fault injection. Zero value is not
// usable; call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode // current (in-memory) namespace
	dirst map[string]*memNode // dir-synced namespace: what a crash keeps
	dirs  map[string]bool

	ops       int // mutating operations performed so far
	stopAfter int // ops at index >= stopAfter fail with ErrPowerLost; -1 = never
	stopped   bool

	// FailOn, when set, is consulted before every mutating operation
	// (after the crash-point check); a non-nil return fails that
	// operation with the returned error. op is one of create, append,
	// write, sync, rename, remove, truncate, syncdir.
	FailOn func(op, name string) error
}

// NewMemFS returns an empty in-memory filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{
		files:     map[string]*memNode{},
		dirst:     map[string]*memNode{},
		dirs:      map[string]bool{},
		stopAfter: -1,
	}
}

// StopAfter arms a crash point: the n-th mutating operation (0-indexed)
// and everything after it fail with ErrPowerLost. Pass -1 to disarm.
func (m *MemFS) StopAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopAfter = n
	m.stopped = false
}

// Ops returns how many mutating operations have executed, so a clean run
// can size the crash matrix.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// check gates a mutating operation: crash point first, then the
// per-operation fault hook. Callers hold m.mu.
func (m *MemFS) check(op, name string) error {
	if m.stopped || (m.stopAfter >= 0 && m.ops >= m.stopAfter) {
		m.stopped = true
		return ErrPowerLost
	}
	m.ops++
	if m.FailOn != nil {
		if err := m.FailOn(op, name); err != nil {
			return err
		}
	}
	return nil
}

// CrashImage returns a fresh MemFS holding what a crash at this moment
// leaves on disk under the given mode. The original is not modified.
func (m *MemFS) CrashImage(mode CrashMode) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.dirst
	if mode == CrashKeepAll {
		src = m.files
	}
	img := NewMemFS()
	for d := range m.dirs {
		img.dirs[d] = true
	}
	for name, node := range src {
		keep := node.syncedLen
		switch mode {
		case CrashPartialTail:
			keep = node.syncedLen + (len(node.data)-node.syncedLen)/2
		case CrashKeepAll:
			keep = len(node.data)
		}
		n := &memNode{data: append([]byte(nil), node.data[:keep]...), syncedLen: keep}
		img.files[name] = n
		img.dirst[name] = n
	}
	return img
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	if names == nil && !m.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), node.data...), nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("create", name); err != nil {
		return nil, err
	}
	node := &memNode{}
	m.files[name] = node
	return &memHandle{fs: m, name: name, node: node}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("append", name); err != nil {
		return nil, err
	}
	node, ok := m.files[name]
	if !ok {
		node = &memNode{}
		m.files[name] = node
	}
	return &memHandle{fs: m, name: name, node: node}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("rename", oldname); err != nil {
		return err
	}
	node, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = node
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("remove", name); err != nil {
		return err
	}
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("truncate", name); err != nil {
		return err
	}
	node, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(node.data)) {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrInvalid}
	}
	node.data = node.data[:size]
	if node.syncedLen > int(size) {
		node.syncedLen = int(size)
	}
	return nil
}

// SyncDir commits the current namespace: after it, a crash keeps exactly
// today's names (creations, renames, and removals all become durable).
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check("syncdir", dir); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	for name := range m.dirst {
		if filepath.Dir(name) == dir {
			delete(m.dirst, name)
		}
	}
	for name, node := range m.files {
		if filepath.Dir(name) == dir {
			m.dirst[name] = node
		}
	}
	return nil
}

// Names returns the current in-memory file names, for test assertions.
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Corrupt flips one byte of a file in place (both in the current and the
// durable view, since they share the node), simulating media corruption.
func (m *MemFS) Corrupt(name string, offset int, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "corrupt", Path: name, Err: fs.ErrNotExist}
	}
	if offset < 0 {
		offset += len(node.data)
	}
	if offset < 0 || offset >= len(node.data) {
		return &fs.PathError{Op: "corrupt", Path: name, Err: fs.ErrInvalid}
	}
	node.data[offset] ^= mask
	return nil
}

// memHandle is a writable handle onto a memNode.
type memHandle struct {
	fs     *MemFS
	name   string
	node   *memNode
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if err := h.fs.check("write", h.name); err != nil {
		// A write interrupted by power loss may still land a prefix of
		// its bytes in the page cache; model that so torn frames appear
		// even at the crashing operation itself.
		if err == ErrPowerLost && len(p) > 0 {
			h.node.data = append(h.node.data, p[:len(p)/2]...)
		}
		return 0, err
	}
	h.node.data = append(h.node.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if err := h.fs.check("sync", h.name); err != nil {
		return err
	}
	h.node.syncedLen = len(h.node.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// FailNth is a FailOn helper: it fails the n-th (0-indexed) operation of
// the given kind with err, and lets everything else through.
func FailNth(n int, op string, err error) func(string, string) error {
	seen := 0
	return func(gotOp, _ string) error {
		if op != "" && gotOp != op {
			return nil
		}
		seen++
		if seen-1 == n {
			return err
		}
		return nil
	}
}
