package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rdfshapes/internal/store"
)

// shipManager builds a MemFS-backed Manager with n appended batches.
func shipManager(t *testing.T, n int) (*Manager, *MemFS) {
	t.Helper()
	fs := NewMemFS()
	empty := store.New()
	empty.Freeze()
	m, err := Create(testDir, Options{FS: fs}, empty.WriteSnapshot)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return m, fs
}

// decodeAll decodes a segment stream into (gen, seq, batch) tuples plus
// the generations announced, failing the test on any decode error.
func decodeAll(t *testing.T, data []byte) (gens []uint64, seqs []uint64, batches []Batch) {
	t.Helper()
	err := DecodeSegments(data,
		func(g uint64) { gens = append(gens, g) },
		func(g, seq uint64, b Batch) error {
			seqs = append(seqs, seq)
			batches = append(batches, b)
			return nil
		})
	if err != nil {
		t.Fatalf("DecodeSegments: %v", err)
	}
	return gens, seqs, batches
}

func TestReadSegmentsFromStart(t *testing.T) {
	m, _ := shipManager(t, 5)
	defer m.Close()

	segs, gen, last, err := m.ReadSegments(1, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	if gen != 1 || last != 5 {
		t.Fatalf("gen=%d last=%d, want 1, 5", gen, last)
	}
	if len(segs) != 1 || segs[0].Gen != 1 {
		t.Fatalf("segments %+v, want one segment for gen 1", segs)
	}
	_, seqs, batches := decodeAll(t, EncodeSegments(segs))
	if want := []uint64{1, 2, 3, 4, 5}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs %v, want %v", seqs, want)
	}
	for i, b := range batches {
		if !reflect.DeepEqual(b, batchN(i)) {
			t.Fatalf("batch %d = %+v, want %+v", i, b, batchN(i))
		}
	}
}

func TestReadSegmentsFromSeqFilters(t *testing.T) {
	m, _ := shipManager(t, 5)
	defer m.Close()

	segs, _, _, err := m.ReadSegments(1, 3)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	_, seqs, _ := decodeAll(t, EncodeSegments(segs))
	if want := []uint64{4, 5}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs %v, want %v", seqs, want)
	}

	// Fully caught up: one empty segment for the active generation.
	segs, _, last, err := m.ReadSegments(1, 5)
	if err != nil {
		t.Fatalf("ReadSegments caught-up: %v", err)
	}
	if last != 5 {
		t.Fatalf("last=%d, want 5", last)
	}
	if len(segs) != 1 || len(segs[0].Records) != 0 {
		t.Fatalf("caught-up segments %+v, want one empty segment", segs)
	}
}

func TestReadSegmentsAcrossRotation(t *testing.T) {
	m, _ := shipManager(t, 3)
	defer m.Close()
	st := store.New()
	st.Freeze()
	if _, err := m.Checkpoint(st.WriteSnapshot); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 3; i < 5; i++ {
		if err := m.Append(batchN(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}

	// A follower still on gen 1 with seq 2 applied gets the tail of
	// gen 1 plus all of gen 2, and learns the current gen from the
	// segment list even though it did not witness the checkpoint.
	segs, gen, last, err := m.ReadSegments(1, 2)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	if gen != 2 || last != 5 {
		t.Fatalf("gen=%d last=%d, want 2, 5", gen, last)
	}
	gens, seqs, _ := decodeAll(t, EncodeSegments(segs))
	if want := []uint64{1, 2}; !reflect.DeepEqual(gens, want) {
		t.Fatalf("gens %v, want %v", gens, want)
	}
	if want := []uint64{3, 4, 5}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs %v, want %v", seqs, want)
	}
}

func TestReadSegmentsEmptyRotation(t *testing.T) {
	// A checkpoint with no subsequent commits still surfaces the new
	// generation as an empty segment, so a polling follower's cursor
	// advances and a later prune cannot strand it.
	m, _ := shipManager(t, 2)
	defer m.Close()
	st := store.New()
	st.Freeze()
	if _, err := m.Checkpoint(st.WriteSnapshot); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, gen, _, err := m.ReadSegments(2, 2)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	if gen != 2 || len(segs) != 1 || segs[0].Gen != 2 || len(segs[0].Records) != 0 {
		t.Fatalf("gen=%d segs=%+v, want gen 2 with one empty segment", gen, segs)
	}
}

func TestReadSegmentsPruned(t *testing.T) {
	m, _ := shipManager(t, 2)
	defer m.Close()
	st := store.New()
	st.Freeze()
	for i := 0; i < 2; i++ { // two checkpoints prune generation 1
		if _, err := m.Checkpoint(st.WriteSnapshot); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	if _, _, _, err := m.ReadSegments(1, 2); !errors.Is(err, ErrGenPruned) {
		t.Fatalf("ReadSegments(pruned gen) err=%v, want ErrGenPruned", err)
	}
	// A generation from the future (divergent follower) is equally
	// unanswerable and must force a re-bootstrap.
	if _, _, _, err := m.ReadSegments(99, 0); !errors.Is(err, ErrGenPruned) {
		t.Fatalf("ReadSegments(future gen) err=%v, want ErrGenPruned", err)
	}
}

func TestSnapshotDataPairsWithTail(t *testing.T) {
	m, _ := shipManager(t, 3)
	defer m.Close()
	st := store.New()
	st.Freeze()
	if _, err := m.Checkpoint(st.WriteSnapshot); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := m.Append(batchN(3)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	gen, data, err := m.SnapshotData()
	if err != nil {
		t.Fatalf("SnapshotData: %v", err)
	}
	if gen != 2 {
		t.Fatalf("snapshot gen %d, want 2", gen)
	}
	if _, err := store.ReadSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatalf("snapshot undecodable: %v", err)
	}
	// Tailing from (gen, 0) yields exactly the post-snapshot commits.
	segs, _, _, err := m.ReadSegments(gen, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	_, seqs, _ := decodeAll(t, EncodeSegments(segs))
	if want := []uint64{4}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("post-snapshot seqs %v, want %v", seqs, want)
	}
}

func TestReadSegmentsClosed(t *testing.T) {
	m, _ := shipManager(t, 1)
	m.Close()
	if _, _, _, err := m.ReadSegments(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadSegments after Close err=%v, want ErrClosed", err)
	}
	if _, _, err := m.SnapshotData(); !errors.Is(err, ErrClosed) {
		t.Fatalf("SnapshotData after Close err=%v, want ErrClosed", err)
	}
}

func TestDecodeSegmentsTornAtEveryBoundary(t *testing.T) {
	m, _ := shipManager(t, 4)
	defer m.Close()
	segs, _, _, err := m.ReadSegments(1, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	wire := EncodeSegments(segs)

	// At every truncation point the decoder must deliver a valid prefix
	// of the record sequence and flag the tear — never a partial,
	// corrupt, or out-of-order record.
	// cut=0 is excluded: an empty stream is a valid zero-segment answer.
	for cut := 1; cut < len(wire); cut++ {
		var seqs []uint64
		err := DecodeSegments(wire[:cut], nil, func(g, seq uint64, b Batch) error {
			seqs = append(seqs, seq)
			return nil
		})
		if err == nil {
			t.Fatalf("cut=%d: torn stream decoded without error", cut)
		}
		if !IsTorn(err) {
			t.Fatalf("cut=%d: err=%v, want IsTorn", cut, err)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("cut=%d: seqs %v are not a prefix of 1..4", cut, seqs)
			}
		}
	}
	// The full stream decodes clean.
	_, seqs, _ := decodeAll(t, wire)
	if want := []uint64{1, 2, 3, 4}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("full decode seqs %v, want %v", seqs, want)
	}
}

func TestDecodeSegmentsCorruptPayload(t *testing.T) {
	m, _ := shipManager(t, 2)
	defer m.Close()
	segs, _, _, err := m.ReadSegments(1, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	wire := EncodeSegments(segs)
	wire[len(wire)-1] ^= 0xFF // flip a byte in the last record's payload

	var seqs []uint64
	derr := DecodeSegments(wire, nil, func(g, seq uint64, b Batch) error {
		seqs = append(seqs, seq)
		return nil
	})
	if !IsTorn(derr) {
		t.Fatalf("corrupt stream err=%v, want IsTorn", derr)
	}
	if want := []uint64{1}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs %v, want the intact prefix %v", seqs, want)
	}
}

func TestDecodeSegmentsCallbackError(t *testing.T) {
	m, _ := shipManager(t, 3)
	defer m.Close()
	segs, _, _, err := m.ReadSegments(1, 0)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	boom := fmt.Errorf("apply failed")
	derr := DecodeSegments(EncodeSegments(segs), nil, func(g, seq uint64, b Batch) error {
		if seq == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(derr, boom) {
		t.Fatalf("err=%v, want the callback error", derr)
	}
	if IsTorn(derr) {
		t.Fatalf("callback error must not read as a torn stream")
	}
}

func TestReadSegmentsConcurrentWithAppend(t *testing.T) {
	// Shipping reads the active file while appends land; every read must
	// see a valid record prefix, never a torn frame.
	m, _ := shipManager(t, 1)
	defer m.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < 50; i++ {
			if err := m.Append(batchN(i)); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	for j := 0; j < 20; j++ {
		segs, _, _, err := m.ReadSegments(1, 0)
		if err != nil {
			t.Fatalf("ReadSegments: %v", err)
		}
		last := uint64(0)
		if derr := DecodeSegments(EncodeSegments(segs), nil, func(g, seq uint64, b Batch) error {
			if seq != last+1 {
				return fmt.Errorf("gap: %d after %d", seq, last)
			}
			last = seq
			return nil
		}); derr != nil {
			t.Fatalf("decode during append: %v", derr)
		}
	}
	<-done
}
