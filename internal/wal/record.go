package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rdfshapes/internal/rdf"
)

// WAL file layout:
//
//	header  := magic "RDFWAL01" (8 bytes) | generation (8 bytes LE)
//	record  := payloadLen (4 bytes LE) | crc32c(payload) (4 bytes LE) | payload
//	payload := seq uvarint | nInsert uvarint | nDelete uvarint
//	           | nInsert triples | nDelete triples
//	triple  := term term term
//	term    := kind (1 byte) | value | datatype | lang   (uvarint-length-prefixed)
//
// Records are append-only; a record is durable once its bytes and every
// byte before it are fsynced. Recovery scans records in order and stops
// at the first frame that is torn (fewer bytes than the frame announces)
// or corrupt (checksum or structural mismatch), truncating the file back
// to the end of the last valid record — the tail past an fsync barrier
// is by definition unacknowledged, so dropping it never loses an
// acknowledged commit.

const (
	walMagic      = "RDFWAL01"
	walHeaderLen  = len(walMagic) + 8 // magic + generation
	frameLen      = 8                 // payloadLen + crc32c
	maxRecordLen  = 1 << 30           // sanity bound on a single record frame
	maxBatchTerms = 1 << 27           // sanity bound on decoded triple counts
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Batch is one durably logged commit: the triples a SPARQL UPDATE
// operation asked to insert and delete. Replay re-applies batches in log
// order through the live store, which makes the log independent of
// dictionary IDs and idempotent under set semantics.
type Batch struct {
	Insert []rdf.Triple
	Delete []rdf.Triple
}

// encodeHeader renders the 16-byte WAL file header.
func encodeHeader(gen uint64) []byte {
	buf := make([]byte, walHeaderLen)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint64(buf[len(walMagic):], gen)
	return buf
}

// decodeHeader validates a WAL file header and returns its generation.
func decodeHeader(data []byte) (uint64, error) {
	if len(data) < walHeaderLen {
		return 0, fmt.Errorf("wal: header truncated (%d bytes)", len(data))
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("wal: bad magic %q", data[:len(walMagic)])
	}
	return binary.LittleEndian.Uint64(data[len(walMagic):walHeaderLen]), nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	return append(buf, scratch[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind))
	buf = appendString(buf, t.Value)
	buf = appendString(buf, t.Datatype)
	return appendString(buf, t.Lang)
}

// encodeRecord renders one framed record: length, checksum, payload.
func encodeRecord(seq uint64, b Batch) []byte {
	payload := appendUvarint(nil, seq)
	payload = appendUvarint(payload, uint64(len(b.Insert)))
	payload = appendUvarint(payload, uint64(len(b.Delete)))
	for _, t := range b.Insert {
		payload = appendTerm(payload, t.S)
		payload = appendTerm(payload, t.P)
		payload = appendTerm(payload, t.O)
	}
	for _, t := range b.Delete {
		payload = appendTerm(payload, t.S)
		payload = appendTerm(payload, t.P)
		payload = appendTerm(payload, t.O)
	}
	rec := make([]byte, frameLen, frameLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, crcTable))
	return append(rec, payload...)
}

// byteCursor decodes a payload from a byte slice with bounds checking.
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: bad uvarint at payload offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.data)-c.off) {
		return "", fmt.Errorf("wal: string length %d exceeds payload", n)
	}
	s := string(c.data[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

func (c *byteCursor) term() (rdf.Term, error) {
	if c.off >= len(c.data) {
		return rdf.Term{}, fmt.Errorf("wal: truncated term at payload offset %d", c.off)
	}
	kind := rdf.TermKind(c.data[c.off])
	c.off++
	if kind > rdf.Blank {
		return rdf.Term{}, fmt.Errorf("wal: invalid term kind %d", kind)
	}
	var t rdf.Term
	t.Kind = kind
	var err error
	if t.Value, err = c.str(); err != nil {
		return rdf.Term{}, err
	}
	if t.Datatype, err = c.str(); err != nil {
		return rdf.Term{}, err
	}
	if t.Lang, err = c.str(); err != nil {
		return rdf.Term{}, err
	}
	return t, nil
}

func (c *byteCursor) triples(n uint64) ([]rdf.Triple, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]rdf.Triple, 0, n)
	for i := uint64(0); i < n; i++ {
		var tr rdf.Triple
		var err error
		if tr.S, err = c.term(); err != nil {
			return nil, err
		}
		if tr.P, err = c.term(); err != nil {
			return nil, err
		}
		if tr.O, err = c.term(); err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (seq uint64, b Batch, err error) {
	c := &byteCursor{data: payload}
	if seq, err = c.uvarint(); err != nil {
		return 0, Batch{}, err
	}
	nIns, err := c.uvarint()
	if err != nil {
		return 0, Batch{}, err
	}
	nDel, err := c.uvarint()
	if err != nil {
		return 0, Batch{}, err
	}
	if nIns > maxBatchTerms || nDel > maxBatchTerms {
		return 0, Batch{}, fmt.Errorf("wal: batch size %d/%d exceeds limit", nIns, nDel)
	}
	if b.Insert, err = c.triples(nIns); err != nil {
		return 0, Batch{}, err
	}
	if b.Delete, err = c.triples(nDel); err != nil {
		return 0, Batch{}, err
	}
	if c.off != len(payload) {
		return 0, Batch{}, fmt.Errorf("wal: %d trailing payload bytes", len(payload)-c.off)
	}
	return seq, b, nil
}

// scanRecords walks the framed records in data (the file contents after
// the header), calling fn for each valid record. It returns the number
// of bytes of the valid prefix (relative to the start of data) and nil
// when the file ends exactly on a record boundary; a torn or corrupt
// tail returns the length of the valid prefix plus a non-nil tear
// describing what stopped the scan. An error from fn also stops the
// scan, with the valid prefix ending before the offending record.
func scanRecords(data []byte, fn func(seq uint64, b Batch) error) (validLen int, tear error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameLen {
			return off, fmt.Errorf("wal: torn frame header at offset %d", off)
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen == 0 || plen > maxRecordLen {
			return off, fmt.Errorf("wal: implausible record length %d at offset %d", plen, off)
		}
		if uint64(len(data)-off-frameLen) < uint64(plen) {
			return off, fmt.Errorf("wal: torn record payload at offset %d", off)
		}
		payload := data[off+frameLen : off+frameLen+int(plen)]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, fmt.Errorf("wal: checksum mismatch at offset %d", off)
		}
		seq, b, err := decodeRecord(payload)
		if err != nil {
			return off, fmt.Errorf("wal: undecodable record at offset %d: %w", off, err)
		}
		if err := fn(seq, b); err != nil {
			return off, err
		}
		off += frameLen + int(plen)
	}
	return off, nil
}
