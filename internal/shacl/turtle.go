package shacl

import (
	"bufio"
	"fmt"
	"io"

	"rdfshapes/internal/rdf"
)

// ParseTurtle reads a shapes graph from its Turtle serialization (the
// format WriteTurtle emits, or any equivalent Turtle subset — property
// shapes may be anonymous blank nodes or IRI-identified).
func ParseTurtle(r io.Reader) (*ShapesGraph, error) {
	g, err := rdf.ParseTurtle(r)
	if err != nil {
		return nil, fmt.Errorf("shacl: %w", err)
	}
	return FromGraph(g)
}

// WriteTurtle serializes the shapes graph in a compact Turtle subset,
// one node shape per block with nested property shapes. This is the
// representation whose byte size the paper reports when quantifying the
// annotation overhead (e.g. LUBM: 45 KB plain → 68 KB annotated).
func (sg *ShapesGraph) WriteTurtle(w io.Writer, prefixes *rdf.PrefixMap) error {
	bw := bufio.NewWriter(w)
	if prefixes == nil {
		prefixes = rdf.CommonPrefixes()
	}
	for _, b := range prefixes.Bindings() {
		fmt.Fprintf(bw, "@prefix %s: <%s> .\n", b[0], b[1])
	}
	fmt.Fprintln(bw)
	name := func(iri string) string {
		if q, ok := prefixes.Compact(iri); ok {
			return q
		}
		return "<" + iri + ">"
	}
	for _, ns := range sg.Shapes() {
		fmt.Fprintf(bw, "%s a sh:NodeShape ;\n", name(ns.IRI))
		fmt.Fprintf(bw, "    sh:targetClass %s ", name(ns.TargetClass))
		if ns.Count >= 0 {
			fmt.Fprintf(bw, ";\n    sh:count %d ", ns.Count)
		}
		for _, ps := range ns.Properties {
			fmt.Fprintf(bw, ";\n    sh:property [\n")
			fmt.Fprintf(bw, "        sh:path %s ", name(ps.Path))
			if ps.NodeKind != "" {
				fmt.Fprintf(bw, ";\n        sh:nodeKind sh:%s ", ps.NodeKind)
			}
			if ps.Datatype != "" {
				fmt.Fprintf(bw, ";\n        sh:datatype %s ", name(ps.Datatype))
			}
			if ps.Class != "" {
				fmt.Fprintf(bw, ";\n        sh:class %s ", name(ps.Class))
			}
			if ps.Stats == nil {
				if ps.MinRequired > 0 {
					fmt.Fprintf(bw, ";\n        sh:minCount %d ", ps.MinRequired)
				}
				if ps.MaxAllowed > 0 {
					fmt.Fprintf(bw, ";\n        sh:maxCount %d ", ps.MaxAllowed)
				}
			}
			if st := ps.Stats; st != nil {
				fmt.Fprintf(bw, ";\n        sh:count %d ", st.Count)
				fmt.Fprintf(bw, ";\n        sh:distinctCount %d ", st.DistinctCount)
				fmt.Fprintf(bw, ";\n        sh:distinctSubjectCount %d ", st.DistinctSubjectCount)
				fmt.Fprintf(bw, ";\n        sh:minCount %d ", st.MinCount)
				fmt.Fprintf(bw, ";\n        sh:maxCount %d ", st.MaxCount)
			}
			fmt.Fprintf(bw, "\n    ] ")
		}
		fmt.Fprintf(bw, ".\n\n")
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("shacl: writing turtle: %w", err)
	}
	return nil
}

// TurtleSize returns the serialized Turtle size in bytes, used by the
// preprocessing-overhead experiment.
func (sg *ShapesGraph) TurtleSize() int {
	var c countingWriter
	// WriteTurtle only fails on writer errors, which countingWriter
	// never produces.
	_ = sg.WriteTurtle(&c, nil)
	return int(c)
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
