package shacl

import (
	"bytes"
	"strings"
	"testing"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

const ns = "http://x/"

func zoo() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	for _, name := range []string{"rex", "fido"} {
		g.Append(iri(name), typ, iri("Dog"))
		g.Append(iri(name), iri("name"), rdf.NewLiteral(name))
	}
	g.Append(iri("rex"), iri("owner"), iri("ann"))
	g.Append(iri("ann"), typ, iri("Person"))
	g.Append(iri("ann"), iri("name"), rdf.NewLiteral("Ann"))
	g.Append(iri("ann"), iri("age"), rdf.NewInteger(40))
	return store.Load(g)
}

func TestInferShapes(t *testing.T) {
	sg, err := InferShapes(zoo())
	if err != nil {
		t.Fatal(err)
	}
	if sg.Len() != 2 {
		t.Fatalf("node shapes = %d, want 2", sg.Len())
	}
	dog := sg.ByClass(ns + "Dog")
	if dog == nil {
		t.Fatal("no Dog shape")
	}
	nameShape := dog.Property(ns + "name")
	if nameShape == nil {
		t.Fatal("Dog has no name property shape")
	}
	if nameShape.NodeKind != "Literal" || nameShape.Datatype != rdf.XSDString {
		t.Errorf("name shape = %+v", nameShape)
	}
	owner := dog.Property(ns + "owner")
	if owner == nil || owner.NodeKind != "IRI" || owner.Class != ns+"Person" {
		t.Errorf("owner shape = %+v", owner)
	}
	person := sg.ByClass(ns + "Person")
	age := person.Property(ns + "age")
	if age == nil || age.Datatype != rdf.XSDInteger {
		t.Errorf("age shape = %+v", age)
	}
	if sg.PropertyShapeCount() != 4 {
		t.Errorf("property shapes = %d, want 4 (dog: name+owner, person: name+age)", sg.PropertyShapeCount())
	}
	if sg.Annotated() {
		t.Error("freshly inferred shapes must not be annotated")
	}
}

func TestInferShapesNoTypes(t *testing.T) {
	var g rdf.Graph
	g.Append(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	sg, err := InferShapes(store.Load(g))
	if err != nil {
		t.Fatal(err)
	}
	if sg.Len() != 0 {
		t.Errorf("shapes = %d, want 0", sg.Len())
	}
}

func TestInferMixedDatatype(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("a"), typ, iri("T"))
	g.Append(iri("a"), iri("v"), rdf.NewLiteral("s"))
	g.Append(iri("b"), typ, iri("T"))
	g.Append(iri("b"), iri("v"), rdf.NewInteger(1))
	sg, err := InferShapes(store.Load(g))
	if err != nil {
		t.Fatal(err)
	}
	ps := sg.ByClass(ns + "T").Property(ns + "v")
	if ps.Datatype != "" {
		t.Errorf("mixed datatypes must not infer a datatype, got %q", ps.Datatype)
	}
	if ps.NodeKind != "Literal" {
		t.Errorf("NodeKind = %q", ps.NodeKind)
	}
}

func TestShapesGraphInjectiveTargets(t *testing.T) {
	sg := NewShapesGraph()
	if err := sg.Add(NewNodeShape("urn:a", ns+"T")); err != nil {
		t.Fatal(err)
	}
	if err := sg.Add(NewNodeShape("urn:b", ns+"T")); err == nil {
		t.Error("duplicate target class accepted")
	}
}

func TestAddPropertyDuplicatePath(t *testing.T) {
	nsh := NewNodeShape("urn:a", ns+"T")
	if err := nsh.AddProperty(&PropertyShape{IRI: "urn:a-p", Path: ns + "p"}); err != nil {
		t.Fatal(err)
	}
	if err := nsh.AddProperty(&PropertyShape{IRI: "urn:a-p2", Path: ns + "p"}); err == nil {
		t.Error("duplicate path accepted")
	}
}

func TestGraphRoundTripWithStats(t *testing.T) {
	sg, err := InferShapes(zoo())
	if err != nil {
		t.Fatal(err)
	}
	// attach statistics to exercise the stats attributes
	for _, nsh := range sg.Shapes() {
		nsh.Count = 2
		for _, ps := range nsh.Properties {
			ps.Stats = &PropStats{Count: 5, DistinctCount: 4, DistinctSubjectCount: 2, MinCount: 1, MaxCount: 3}
		}
	}
	rt, err := FromGraph(sg.ToGraph())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != sg.Len() || rt.PropertyShapeCount() != sg.PropertyShapeCount() {
		t.Fatalf("shape counts differ after round trip")
	}
	if !rt.Annotated() {
		t.Error("round trip lost annotations")
	}
	dog := rt.ByClass(ns + "Dog")
	ps := dog.Property(ns + "name")
	if ps.Stats == nil || ps.Stats.DistinctCount != 4 || ps.Stats.MaxCount != 3 {
		t.Errorf("stats after round trip = %+v", ps.Stats)
	}
	if dog.Count != 2 {
		t.Errorf("node count after round trip = %d", dog.Count)
	}
}

func TestFromGraphErrors(t *testing.T) {
	mk := func(lines ...rdf.Triple) rdf.Graph { return rdf.Graph(lines) }
	typ := rdf.NewIRI(rdf.RDFType)
	shape := rdf.NewIRI("urn:s")
	cases := map[string]rdf.Graph{
		"no target class": mk(
			rdf.NewTriple(shape, typ, rdf.NewIRI(rdf.SHNodeShape)),
		),
		"property without path": mk(
			rdf.NewTriple(shape, typ, rdf.NewIRI(rdf.SHNodeShape)),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHTargetClass), rdf.NewIRI(ns+"T")),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHProperty), rdf.NewIRI("urn:p")),
			rdf.NewTriple(rdf.NewIRI("urn:p"), typ, rdf.NewIRI(rdf.SHPropertyShape)),
		),
		"bad count literal": mk(
			rdf.NewTriple(shape, typ, rdf.NewIRI(rdf.SHNodeShape)),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHTargetClass), rdf.NewIRI(ns+"T")),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHCount), rdf.NewLiteral("many")),
		),
		"non-literal count": mk(
			rdf.NewTriple(shape, typ, rdf.NewIRI(rdf.SHNodeShape)),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHTargetClass), rdf.NewIRI(ns+"T")),
			rdf.NewTriple(shape, rdf.NewIRI(rdf.SHCount), rdf.NewIRI("urn:x")),
		),
	}
	for name, g := range cases {
		if _, err := FromGraph(g); err == nil {
			t.Errorf("%s: FromGraph succeeded, want error", name)
		}
	}
}

func TestWriteTurtle(t *testing.T) {
	sg, err := InferShapes(zoo())
	if err != nil {
		t.Fatal(err)
	}
	plainSize := sg.TurtleSize()
	for _, nsh := range sg.Shapes() {
		nsh.Count = 42
		for _, ps := range nsh.Properties {
			ps.Stats = &PropStats{Count: 10, DistinctCount: 9, DistinctSubjectCount: 8, MinCount: 0, MaxCount: 2}
		}
	}
	var buf bytes.Buffer
	if err := sg.WriteTurtle(&buf, nil); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"sh:NodeShape", "sh:targetClass", "sh:count 42", "sh:distinctCount 9", "@prefix sh:"} {
		if !strings.Contains(text, want) {
			t.Errorf("turtle missing %q:\n%s", want, text)
		}
	}
	annotatedSize := sg.TurtleSize()
	if annotatedSize <= plainSize {
		t.Errorf("annotated size %d not larger than plain %d", annotatedSize, plainSize)
	}
	// the paper reports ≈1.5× growth for LUBM; anything under 3× is sane
	if float64(annotatedSize) > 3*float64(plainSize) {
		t.Errorf("annotation overhead too large: %d vs %d", annotatedSize, plainSize)
	}
}

func TestValidateCleanData(t *testing.T) {
	st := zoo()
	sg, err := InferShapes(st)
	if err != nil {
		t.Fatal(err)
	}
	if vs := sg.Validate(st, 0); len(vs) != 0 {
		t.Errorf("violations on conforming data: %v", vs)
	}
}

func TestValidateViolations(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	g.Append(iri("rex"), typ, iri("Dog"))
	g.Append(iri("rex"), iri("name"), rdf.NewInteger(7))  // datatype violation
	g.Append(iri("rex"), iri("owner"), iri("someone"))    // class violation (untyped)
	g.Append(iri("rex"), iri("toy"), rdf.NewLiteral("x")) // nodekind violation
	st := store.Load(g)

	sg := NewShapesGraph()
	dog := NewNodeShape("urn:dog", ns+"Dog")
	mustAdd := func(ps *PropertyShape) {
		if err := dog.AddProperty(ps); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&PropertyShape{IRI: "urn:dog-name", Path: ns + "name", NodeKind: "Literal", Datatype: rdf.XSDString})
	mustAdd(&PropertyShape{IRI: "urn:dog-owner", Path: ns + "owner", NodeKind: "IRI", Class: ns + "Person"})
	mustAdd(&PropertyShape{IRI: "urn:dog-toy", Path: ns + "toy", NodeKind: "IRI"})
	if err := sg.Add(dog); err != nil {
		t.Fatal(err)
	}

	vs := sg.Validate(st, 0)
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.String() == "" {
			t.Error("empty violation message")
		}
	}
	// limit should truncate
	if vs := sg.Validate(st, 2); len(vs) != 2 {
		t.Errorf("limited violations = %d, want 2", len(vs))
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	sg, err := InferShapes(zoo())
	if err != nil {
		t.Fatal(err)
	}
	for _, nsh := range sg.Shapes() {
		nsh.Count = 7
		for _, ps := range nsh.Properties {
			ps.Stats = &PropStats{Count: 3, DistinctCount: 2, DistinctSubjectCount: 3, MinCount: 1, MaxCount: 2}
		}
	}
	var buf bytes.Buffer
	if err := sg.WriteTurtle(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rt, err := ParseTurtle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != sg.Len() || rt.PropertyShapeCount() != sg.PropertyShapeCount() {
		t.Fatalf("shape counts differ: %d/%d vs %d/%d",
			rt.Len(), rt.PropertyShapeCount(), sg.Len(), sg.PropertyShapeCount())
	}
	if !rt.Annotated() {
		t.Error("turtle round trip lost statistics")
	}
	dog := rt.ByClass(ns + "Dog")
	if dog == nil || dog.Count != 7 {
		t.Fatalf("Dog shape = %+v", dog)
	}
	ps := dog.Property(ns + "name")
	if ps == nil || ps.Stats == nil {
		t.Fatal("name property shape lost")
	}
	if *ps.Stats != (PropStats{Count: 3, DistinctCount: 2, DistinctSubjectCount: 3, MinCount: 1, MaxCount: 2}) {
		t.Errorf("stats = %+v", *ps.Stats)
	}
	if ps.NodeKind != "Literal" || ps.Datatype != rdf.XSDString {
		t.Errorf("constraints lost: %+v", ps)
	}
}

func TestValidateCardinalityConstraints(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	typ := rdf.NewIRI(rdf.RDFType)
	var g rdf.Graph
	// rex: 0 names (violates min 1); fido: 3 names (violates max 2)
	g.Append(iri("rex"), typ, iri("Dog"))
	g.Append(iri("fido"), typ, iri("Dog"))
	g.Append(iri("fido"), iri("name"), rdf.NewLiteral("a"))
	g.Append(iri("fido"), iri("name"), rdf.NewLiteral("b"))
	g.Append(iri("fido"), iri("name"), rdf.NewLiteral("c"))
	g.Append(iri("ok"), typ, iri("Dog"))
	g.Append(iri("ok"), iri("name"), rdf.NewLiteral("d"))
	st := store.Load(g)

	sg := NewShapesGraph()
	dog := NewNodeShape("urn:dog", ns+"Dog")
	if err := dog.AddProperty(&PropertyShape{
		IRI: "urn:dog-name", Path: ns + "name",
		MinRequired: 1, MaxAllowed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sg.Add(dog); err != nil {
		t.Fatal(err)
	}
	vs := sg.Validate(st, 0)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2: %v", len(vs), vs)
	}
	byFocus := map[string]string{}
	for _, v := range vs {
		byFocus[v.FocusNode.Value] = v.Message
	}
	if !strings.Contains(byFocus[ns+"rex"], "at least 1") {
		t.Errorf("rex violation = %q", byFocus[ns+"rex"])
	}
	if !strings.Contains(byFocus[ns+"fido"], "at most 2") {
		t.Errorf("fido violation = %q", byFocus[ns+"fido"])
	}
}

func TestConstraintSerializationRoundTrip(t *testing.T) {
	sg := NewShapesGraph()
	dog := NewNodeShape("urn:dog", ns+"Dog")
	if err := dog.AddProperty(&PropertyShape{
		IRI: "urn:dog-name", Path: ns + "name",
		MinRequired: 1, MaxAllowed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sg.Add(dog); err != nil {
		t.Fatal(err)
	}
	// unannotated: min/max serialize as constraints and parse back
	rt, err := FromGraph(sg.ToGraph())
	if err != nil {
		t.Fatal(err)
	}
	ps := rt.ByClass(ns + "Dog").Property(ns + "name")
	if ps.MinRequired != 1 || ps.MaxAllowed != 3 || ps.Stats != nil {
		t.Errorf("constraints after round trip = %+v", ps)
	}
	// Turtle form too
	var buf bytes.Buffer
	if err := sg.WriteTurtle(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sh:minCount 1") || !strings.Contains(buf.String(), "sh:maxCount 3") {
		t.Errorf("turtle missing constraints:\n%s", buf.String())
	}
	rt2, err := ParseTurtle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ps2 := rt2.ByClass(ns + "Dog").Property(ns + "name")
	if ps2.MinRequired != 1 || ps2.MaxAllowed != 3 {
		t.Errorf("turtle round trip = %+v", ps2)
	}
	// once annotated, min/max become statistics and constraints stop
	// serializing — the paper's attribute reuse
	rt.ByClass(ns + "Dog").Count = 0
	ps.Stats = &PropStats{Count: 4, MinCount: 0, MaxCount: 2}
	rt3, err := FromGraph(rt.ToGraph())
	if err != nil {
		t.Fatal(err)
	}
	ps3 := rt3.ByClass(ns + "Dog").Property(ns + "name")
	if ps3.Stats == nil || ps3.Stats.MaxCount != 2 {
		t.Errorf("annotated round trip = %+v", ps3)
	}
	if ps3.MinRequired != 0 || ps3.MaxAllowed != 0 {
		t.Errorf("constraints leaked into annotated form: %+v", ps3)
	}
}
