package shacl

import (
	"fmt"

	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Violation reports one failed constraint check during validation.
type Violation struct {
	// FocusNode is the data node that violated the constraint.
	FocusNode rdf.Term
	// Shape is the IRI of the node or property shape that was violated.
	Shape string
	// Path is the predicate involved, or "" for node-level violations.
	Path string
	// Message describes the violation.
	Message string
}

// String renders the violation for logs and error messages.
func (v Violation) String() string {
	if v.Path != "" {
		return fmt.Sprintf("%s: %s @ %s (path %s)", v.Shape, v.Message, v.FocusNode, v.Path)
	}
	return fmt.Sprintf("%s: %s @ %s", v.Shape, v.Message, v.FocusNode)
}

// Source is the read-only data view validation runs against. Both the
// frozen *store.Store and the live overlay snapshot satisfy it, so
// committed-but-uncompacted updates can be validated without forcing a
// compaction.
type Source interface {
	Dict() *store.Dict
	TypeID() store.ID
	Scan(pat store.IDTriple, fn func(store.IDTriple) bool)
	Contains(t store.IDTriple) bool
}

// Validate checks every instance of each node shape's target class
// against the shape's property constraints (sh:datatype, sh:class,
// sh:nodeKind). It returns the violations found, up to limit (0 = all).
//
// This is SHACL's original validation semantics, retained to demonstrate
// that the statistics annotations do not interfere with it.
func (sg *ShapesGraph) Validate(st Source, limit int) []Violation {
	var out []Violation
	tid := st.TypeID()
	if tid == 0 {
		return nil
	}
	add := func(v Violation) bool {
		out = append(out, v)
		return limit == 0 || len(out) < limit
	}
	for _, ns := range sg.Shapes() {
		clsID, ok := st.Dict().Lookup(rdf.NewIRI(ns.TargetClass))
		if !ok {
			continue
		}
		keepGoing := true
		st.Scan(store.IDTriple{P: tid, O: clsID}, func(inst store.IDTriple) bool {
			focus := inst.S
			for _, ps := range ns.Properties {
				var occurrences int64
				predID, found := st.Dict().Lookup(rdf.NewIRI(ps.Path))
				if found {
					ok2 := true
					st.Scan(store.IDTriple{S: focus, P: predID}, func(t store.IDTriple) bool {
						occurrences++
						obj := st.Dict().Term(t.O)
						if v, bad := checkObject(ps, st, obj); bad {
							v.FocusNode = st.Dict().Term(focus)
							if !add(v) {
								ok2 = false
								return false
							}
						}
						return true
					})
					if !ok2 {
						keepGoing = false
						return false
					}
				}
				if v, bad := checkCardinality(ps, occurrences); bad {
					v.FocusNode = st.Dict().Term(focus)
					if !add(v) {
						keepGoing = false
						return false
					}
				}
			}
			return true
		})
		if !keepGoing {
			break
		}
	}
	return out
}

// checkCardinality enforces the MinRequired/MaxAllowed constraints
// against the number of values a focus node has for the property.
func checkCardinality(ps *PropertyShape, occurrences int64) (Violation, bool) {
	base := Violation{Shape: ps.IRI, Path: ps.Path}
	if ps.MinRequired > 0 && occurrences < ps.MinRequired {
		base.Message = fmt.Sprintf("has %d values, requires at least %d", occurrences, ps.MinRequired)
		return base, true
	}
	if ps.MaxAllowed > 0 && occurrences > ps.MaxAllowed {
		base.Message = fmt.Sprintf("has %d values, allows at most %d", occurrences, ps.MaxAllowed)
		return base, true
	}
	return Violation{}, false
}

func checkObject(ps *PropertyShape, st Source, obj rdf.Term) (Violation, bool) {
	base := Violation{Shape: ps.IRI, Path: ps.Path}
	switch ps.NodeKind {
	case "IRI":
		if !obj.IsIRI() && !obj.IsBlank() {
			base.Message = fmt.Sprintf("object %s is not an IRI", obj)
			return base, true
		}
	case "Literal":
		if !obj.IsLiteral() {
			base.Message = fmt.Sprintf("object %s is not a literal", obj)
			return base, true
		}
	}
	if ps.Datatype != "" && obj.IsLiteral() {
		dt := obj.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		if dt != ps.Datatype {
			base.Message = fmt.Sprintf("object %s has datatype %s, want %s", obj, dt, ps.Datatype)
			return base, true
		}
	}
	if ps.Class != "" && obj.IsIRI() {
		objID, ok := st.Dict().Lookup(obj)
		if !ok {
			base.Message = fmt.Sprintf("object %s is not in the data graph", obj)
			return base, true
		}
		clsID, ok := st.Dict().Lookup(rdf.NewIRI(ps.Class))
		if !ok || !st.Contains(store.IDTriple{S: objID, P: st.TypeID(), O: clsID}) {
			base.Message = fmt.Sprintf("object %s is not an instance of %s", obj, ps.Class)
			return base, true
		}
	}
	return Violation{}, false
}
