package shacl

import (
	"fmt"
	"strconv"

	"rdfshapes/internal/rdf"
)

// ToGraph serializes the shapes graph (including any statistics
// annotations) as RDF triples using the SHACL vocabulary plus the paper's
// statistics attributes.
func (sg *ShapesGraph) ToGraph() rdf.Graph {
	var out rdf.Graph
	typ := rdf.NewIRI(rdf.RDFType)
	for _, ns := range sg.Shapes() {
		s := rdf.NewIRI(ns.IRI)
		out.Append(s, typ, rdf.NewIRI(rdf.SHNodeShape))
		out.Append(s, rdf.NewIRI(rdf.SHTargetClass), rdf.NewIRI(ns.TargetClass))
		if ns.Count >= 0 {
			out.Append(s, rdf.NewIRI(rdf.SHCount), rdf.NewInteger(ns.Count))
		}
		for _, ps := range ns.Properties {
			p := rdf.NewIRI(ps.IRI)
			out.Append(s, rdf.NewIRI(rdf.SHProperty), p)
			out.Append(p, typ, rdf.NewIRI(rdf.SHPropertyShape))
			out.Append(p, rdf.NewIRI(rdf.SHPath), rdf.NewIRI(ps.Path))
			if ps.Datatype != "" {
				out.Append(p, rdf.NewIRI(rdf.SHDatatype), rdf.NewIRI(ps.Datatype))
			}
			if ps.Class != "" {
				out.Append(p, rdf.NewIRI(rdf.SHClass), rdf.NewIRI(ps.Class))
			}
			if ps.NodeKind != "" {
				kind := rdf.SHIRIKind
				if ps.NodeKind == "Literal" {
					kind = rdf.SHLiteralKind
				}
				out.Append(p, rdf.NewIRI(rdf.SHNodeKind), rdf.NewIRI(kind))
			}
			// Constraints and statistics share the sh:minCount and
			// sh:maxCount attribute names (the paper repurposes them),
			// so constraints serialize only while unannotated.
			if ps.Stats == nil {
				if ps.MinRequired > 0 {
					out.Append(p, rdf.NewIRI(rdf.SHMinCount), rdf.NewInteger(ps.MinRequired))
				}
				if ps.MaxAllowed > 0 {
					out.Append(p, rdf.NewIRI(rdf.SHMaxCount), rdf.NewInteger(ps.MaxAllowed))
				}
			}
			if st := ps.Stats; st != nil {
				out.Append(p, rdf.NewIRI(rdf.SHCount), rdf.NewInteger(st.Count))
				out.Append(p, rdf.NewIRI(rdf.SHDistinctCount), rdf.NewInteger(st.DistinctCount))
				out.Append(p, rdf.NewIRI(rdf.SHDistinctSubjectCount), rdf.NewInteger(st.DistinctSubjectCount))
				out.Append(p, rdf.NewIRI(rdf.SHMinCount), rdf.NewInteger(st.MinCount))
				out.Append(p, rdf.NewIRI(rdf.SHMaxCount), rdf.NewInteger(st.MaxCount))
			}
		}
	}
	return out
}

// FromGraph reconstructs a shapes graph from RDF triples produced by
// ToGraph (or any graph using the same subset of the SHACL vocabulary
// with IRI-identified shapes).
func FromGraph(g rdf.Graph) (*ShapesGraph, error) {
	bySubj := map[rdf.Term][]rdf.Triple{}
	var nodeShapes []rdf.Term
	for _, t := range g {
		bySubj[t.S] = append(bySubj[t.S], t)
		if t.P.Value == rdf.RDFType && t.O.Value == rdf.SHNodeShape {
			nodeShapes = append(nodeShapes, t.S)
		}
	}
	sg := NewShapesGraph()
	for _, subj := range nodeShapes {
		ns := NewNodeShape(subj.Value, "")
		var propSubjects []rdf.Term
		for _, t := range bySubj[subj] {
			switch t.P.Value {
			case rdf.SHTargetClass:
				ns.TargetClass = t.O.Value
			case rdf.SHCount:
				n, err := parseCount(t)
				if err != nil {
					return nil, err
				}
				ns.Count = n
			case rdf.SHProperty:
				propSubjects = append(propSubjects, t.O)
			}
		}
		if ns.TargetClass == "" {
			return nil, fmt.Errorf("shacl: node shape %s has no sh:targetClass", subj.Value)
		}
		for _, psub := range propSubjects {
			ps, err := propertyFromTriples(psub, bySubj[psub])
			if err != nil {
				return nil, err
			}
			if err := ns.AddProperty(ps); err != nil {
				return nil, err
			}
		}
		if err := sg.Add(ns); err != nil {
			return nil, err
		}
	}
	return sg, nil
}

func propertyFromTriples(subj rdf.Term, ts []rdf.Triple) (*PropertyShape, error) {
	ps := &PropertyShape{IRI: subj.Value}
	stats := &PropStats{}
	// sh:minCount/sh:maxCount are cardinality constraints in plain SHACL
	// but statistics once the annotator has run; the presence of the
	// statistics-only attributes (sh:count etc.) disambiguates.
	sawStats := false
	var minCount, maxCount int64
	for _, t := range ts {
		switch t.P.Value {
		case rdf.SHPath:
			ps.Path = t.O.Value
		case rdf.SHDatatype:
			ps.Datatype = t.O.Value
		case rdf.SHClass:
			ps.Class = t.O.Value
		case rdf.SHNodeKind:
			if t.O.Value == rdf.SHLiteralKind {
				ps.NodeKind = "Literal"
			} else {
				ps.NodeKind = "IRI"
			}
		case rdf.SHCount, rdf.SHDistinctCount, rdf.SHDistinctSubjectCount, rdf.SHMinCount, rdf.SHMaxCount:
			n, err := parseCount(t)
			if err != nil {
				return nil, err
			}
			switch t.P.Value {
			case rdf.SHCount:
				sawStats = true
				stats.Count = n
			case rdf.SHDistinctCount:
				sawStats = true
				stats.DistinctCount = n
			case rdf.SHDistinctSubjectCount:
				sawStats = true
				stats.DistinctSubjectCount = n
			case rdf.SHMinCount:
				minCount = n
			case rdf.SHMaxCount:
				maxCount = n
			}
		}
	}
	if ps.Path == "" {
		return nil, fmt.Errorf("shacl: property shape %s has no sh:path", subj.Value)
	}
	if sawStats {
		stats.MinCount = minCount
		stats.MaxCount = maxCount
		ps.Stats = stats
	} else {
		ps.MinRequired = minCount
		ps.MaxAllowed = maxCount
	}
	return ps, nil
}

func parseCount(t rdf.Triple) (int64, error) {
	if !t.O.IsLiteral() {
		return 0, fmt.Errorf("shacl: %s of %s must be a literal, got %s", t.P.Value, t.S.Value, t.O)
	}
	n, err := strconv.ParseInt(t.O.Value, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("shacl: bad integer %q for %s: %w", t.O.Value, t.P.Value, err)
	}
	return n, nil
}
