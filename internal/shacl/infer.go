package shacl

import (
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// InferShapes derives a shapes graph from a data graph, playing the role
// of the SHACLGEN library in the paper: one node shape per class, one
// property shape per (class, predicate) pair observed on instances of the
// class, with sh:datatype / sh:class / sh:nodeKind inferred when all
// observed objects agree.
//
// Shape IRIs are minted under the urn:shapes: namespace from the class
// local name.
func InferShapes(st *store.Store) (*ShapesGraph, error) {
	sg := NewShapesGraph()
	tid := st.TypeID()
	if tid == 0 {
		return sg, nil
	}

	type propKey struct {
		class store.ID
		pred  store.ID
	}
	type propInfo struct {
		sawIRI, sawLiteral bool
		datatype           string
		datatypeMixed      bool
		objClass           string
		objClassMixed      bool
	}
	props := map[propKey]*propInfo{}
	classes := map[store.ID]bool{}

	// classOf returns the classes of an object term, used to infer
	// sh:class constraints.
	classOf := func(obj store.ID) []store.ID {
		var out []store.ID
		st.Scan(store.IDTriple{S: obj, P: tid}, func(t store.IDTriple) bool {
			out = append(out, t.O)
			return true
		})
		return out
	}

	st.ForEachSubject(func(subject store.ID, triples []store.IDTriple) bool {
		var types []store.ID
		for _, t := range triples {
			if t.P == tid {
				types = append(types, t.O)
				classes[t.O] = true
			}
		}
		if len(types) == 0 {
			return true
		}
		for _, t := range triples {
			if t.P == tid {
				continue
			}
			for _, cls := range types {
				key := propKey{cls, t.P}
				info := props[key]
				if info == nil {
					info = &propInfo{}
					props[key] = info
				}
				obj := st.Dict().Term(t.O)
				if obj.IsLiteral() {
					info.sawLiteral = true
					dt := obj.Datatype
					if dt == "" {
						dt = rdf.XSDString
					}
					switch {
					case info.datatype == "" && !info.datatypeMixed:
						info.datatype = dt
					case info.datatype != dt:
						info.datatypeMixed = true
						info.datatype = ""
					}
				} else {
					info.sawIRI = true
					ocs := classOf(t.O)
					if len(ocs) == 1 {
						oc := st.Dict().Term(ocs[0]).Value
						switch {
						case info.objClass == "" && !info.objClassMixed:
							info.objClass = oc
						case info.objClass != oc:
							info.objClassMixed = true
							info.objClass = ""
						}
					} else {
						info.objClassMixed = true
						info.objClass = ""
					}
				}
			}
		}
		return true
	})

	for cls := range classes {
		clsIRI := st.Dict().Term(cls).Value
		ns := NewNodeShape(shapeIRIFor(clsIRI), clsIRI)
		if err := sg.Add(ns); err != nil {
			return nil, err
		}
	}
	for key, info := range props {
		clsIRI := st.Dict().Term(key.class).Value
		predIRI := st.Dict().Term(key.pred).Value
		ns := sg.ByClass(clsIRI)
		ps := &PropertyShape{
			IRI:  ns.IRI + "-" + localName(predIRI),
			Path: predIRI,
		}
		switch {
		case info.sawLiteral && !info.sawIRI:
			ps.NodeKind = "Literal"
			if !info.datatypeMixed {
				ps.Datatype = info.datatype
			}
		case info.sawIRI && !info.sawLiteral:
			ps.NodeKind = "IRI"
			if !info.objClassMixed {
				ps.Class = info.objClass
			}
		}
		if err := ns.AddProperty(ps); err != nil {
			return nil, err
		}
	}
	return sg, nil
}

// shapeIRIFor mints a deterministic shape IRI for a class IRI.
func shapeIRIFor(classIRI string) string {
	return "urn:shapes:" + localName(classIRI) + "Shape"
}

// localName extracts the fragment or last path segment of an IRI.
func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		switch iri[i] {
		case '#', '/', ':':
			return iri[i+1:]
		}
	}
	return iri
}
