// Package shacl models SHACL shapes graphs — node shapes targeting
// classes and property shapes targeting predicates — together with the
// statistics extension proposed by the paper (Section 5): sh:count,
// sh:minCount, sh:maxCount, and sh:distinctCount annotations computed
// from the data graph.
//
// The package also provides shape inference from a data graph (the role
// SHACLGEN plays in the paper, used for datasets that ship without
// shapes), serialization to/from RDF, a compact Turtle writer (used for
// the shapes-size overhead experiment), and constraint validation —
// SHACL's original purpose, kept so the statistics extension demonstrably
// "retains the structure of the original SHACL shapes graph".
package shacl

import (
	"fmt"
	"sort"
)

// PropStats is the statistics annotation of a property shape. All values
// are scoped to subjects that are instances of the owning node shape's
// target class: the fine-grained correlation information that global
// statistics lack.
type PropStats struct {
	// Count is the number of <s, path, o> triples with s an instance of
	// the target class (sh:count).
	Count int64
	// DistinctCount is the number of distinct objects among those
	// triples (sh:distinctCount).
	DistinctCount int64
	// DistinctSubjectCount is the number of distinct subjects among
	// those triples (sh:distinctSubjectCount; an addition of this
	// implementation — the paper approximates it by the node shape
	// count).
	DistinctSubjectCount int64
	// MinCount and MaxCount are the minimum and maximum number of such
	// triples per instance (sh:minCount / sh:maxCount as statistics;
	// instances lacking the property yield MinCount 0).
	MinCount int64
	MaxCount int64
}

// PropertyShape constrains (and, once annotated, describes) one predicate
// of the instances of a node shape.
type PropertyShape struct {
	// IRI identifies the shape; blank-node property shapes get synthetic
	// IRIs during inference.
	IRI string
	// Path is the target predicate IRI (sh:path).
	Path string
	// Datatype, when non-empty, constrains literal objects (sh:datatype).
	Datatype string
	// Class, when non-empty, constrains IRI objects to instances of the
	// class (sh:class).
	Class string
	// NodeKind is "IRI", "Literal", or "" (sh:nodeKind).
	NodeKind string
	// MinRequired and MaxAllowed are SHACL cardinality *constraints*
	// (how many values each focus node must/may have); 0 means unset,
	// so the zero-value shape carries no cardinality constraints. They
	// are distinct from Stats: the paper repurposes the
	// sh:minCount/sh:maxCount attribute names for observed statistics,
	// so a shapes graph serializes constraints only while unannotated
	// (Stats nil), but validation honors them regardless.
	MinRequired int64
	MaxAllowed  int64
	// Stats is nil until the annotator runs.
	Stats *PropStats
}

// NodeShape targets a class and owns a set of property shapes.
type NodeShape struct {
	// IRI identifies the shape.
	IRI string
	// TargetClass is the class IRI whose instances the shape describes
	// (sh:targetClass).
	TargetClass string
	// Properties lists the shape's property shapes sorted by path.
	Properties []*PropertyShape
	// Count is the number of instances of the target class (sh:count);
	// -1 until the annotator runs.
	Count int64
}

// NewNodeShape returns a node shape with no statistics.
func NewNodeShape(iri, targetClass string) *NodeShape {
	return &NodeShape{IRI: iri, TargetClass: targetClass, Count: -1}
}

// Property returns the property shape for the given predicate IRI, or nil.
func (ns *NodeShape) Property(path string) *PropertyShape {
	for _, ps := range ns.Properties {
		if ps.Path == path {
			return ps
		}
	}
	return nil
}

// AddProperty appends a property shape, keeping Properties sorted by path.
// Adding a second shape for the same path is an error.
func (ns *NodeShape) AddProperty(ps *PropertyShape) error {
	if ns.Property(ps.Path) != nil {
		return fmt.Errorf("shacl: node shape %s already has a property shape for %s", ns.IRI, ps.Path)
	}
	ns.Properties = append(ns.Properties, ps)
	sort.Slice(ns.Properties, func(i, j int) bool { return ns.Properties[i].Path < ns.Properties[j].Path })
	return nil
}

// ShapesGraph is the SHACL shapes graph G_sh: a set of node shapes with
// injective class targeting (Definition 3.3).
type ShapesGraph struct {
	shapes  []*NodeShape
	byClass map[string]*NodeShape
}

// NewShapesGraph returns an empty shapes graph.
func NewShapesGraph() *ShapesGraph {
	return &ShapesGraph{byClass: map[string]*NodeShape{}}
}

// Add inserts a node shape. Two shapes may not target the same class
// (targetS is injective per Definition 3.3).
func (sg *ShapesGraph) Add(ns *NodeShape) error {
	if prev, ok := sg.byClass[ns.TargetClass]; ok {
		return fmt.Errorf("shacl: class %s already targeted by shape %s", ns.TargetClass, prev.IRI)
	}
	sg.byClass[ns.TargetClass] = ns
	sg.shapes = append(sg.shapes, ns)
	return nil
}

// ByClass returns the node shape targeting the class IRI, or nil.
func (sg *ShapesGraph) ByClass(class string) *NodeShape { return sg.byClass[class] }

// Shapes returns the node shapes sorted by target class.
func (sg *ShapesGraph) Shapes() []*NodeShape {
	out := append([]*NodeShape(nil), sg.shapes...)
	sort.Slice(out, func(i, j int) bool { return out[i].TargetClass < out[j].TargetClass })
	return out
}

// Len returns the number of node shapes.
func (sg *ShapesGraph) Len() int { return len(sg.shapes) }

// PropertyShapeCount returns the total number of property shapes, a
// figure the paper reports for YAGO-4 (80 831 property shapes).
func (sg *ShapesGraph) PropertyShapeCount() int {
	n := 0
	for _, ns := range sg.shapes {
		n += len(ns.Properties)
	}
	return n
}

// Clone returns a deep copy of the graph: node shapes, property shapes,
// and statistics are all fresh, so incremental maintenance can mutate a
// private copy while queries keep reading the published one.
func (sg *ShapesGraph) Clone() *ShapesGraph {
	out := NewShapesGraph()
	for _, ns := range sg.shapes {
		c := *ns
		c.Properties = make([]*PropertyShape, len(ns.Properties))
		for i, ps := range ns.Properties {
			p := *ps
			if ps.Stats != nil {
				st := *ps.Stats
				p.Stats = &st
			}
			c.Properties[i] = &p
		}
		// Add cannot fail: class targeting was injective in the source.
		_ = out.Add(&c)
	}
	return out
}

// Annotated reports whether every shape carries statistics.
func (sg *ShapesGraph) Annotated() bool {
	for _, ns := range sg.shapes {
		if ns.Count < 0 {
			return false
		}
		for _, ps := range ns.Properties {
			if ps.Stats == nil {
				return false
			}
		}
	}
	return len(sg.shapes) > 0
}
