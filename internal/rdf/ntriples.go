package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseTerm parses a single term in N-Triples syntax (as produced by
// Term.String): an IRI in angle brackets, a quoted literal with optional
// @lang or ^^<datatype>, or a _:label blank node.
func ParseTerm(s string) (Term, error) {
	p := &termParser{s: s}
	t, err := p.term()
	if err != nil {
		return Term{}, fmt.Errorf("rdf: parsing term %q: %w", s, err)
	}
	p.skipSpace()
	if p.rest() != "" {
		return Term{}, fmt.Errorf("rdf: trailing input after term %q", s)
	}
	return t, nil
}

// ParseNTriples reads a graph serialized in the N-Triples subset produced
// by WriteNTriples: one triple per line, '#' comment lines, IRIs in angle
// brackets, literals in double quotes with optional ^^<datatype> or @lang,
// blank nodes as _:label.
func ParseNTriples(r io.Reader) (Graph, error) {
	var g Graph
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		g = append(g, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading input: %w", err)
	}
	return g, nil
}

func parseTripleLine(line string) (Triple, error) {
	p := &termParser{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if !pr.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be an IRI, got %s", pr)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), ".") {
		return Triple{}, fmt.Errorf("missing terminating '.' in %q", line)
	}
	return Triple{S: s, P: pr, O: o}, nil
}

// termParser is a minimal recursive-descent reader over one line.
type termParser struct {
	s string
	i int
}

func (p *termParser) rest() string { return p.s[p.i:] }

func (p *termParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *termParser) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return NewIRI(iri), nil
	case '_':
		if !strings.HasPrefix(p.rest(), "_:") {
			return Term{}, fmt.Errorf("malformed blank node at %q", p.rest())
		}
		start := p.i + 2
		j := start
		for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
			j++
		}
		label := p.s[start:j]
		p.i = j
		if label == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		return NewBlank(label), nil
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func (p *termParser) literal() (Term, error) {
	// find the closing unescaped quote
	j := p.i + 1
	for j < len(p.s) {
		if p.s[j] == '\\' {
			j += 2
			continue
		}
		if p.s[j] == '"' {
			break
		}
		j++
	}
	if j >= len(p.s) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	lex := unescapeLiteral(p.s[p.i+1 : j])
	p.i = j + 1
	// optional @lang or ^^<datatype>
	if strings.HasPrefix(p.rest(), "@") {
		start := p.i + 1
		k := start
		for k < len(p.s) && p.s[k] != ' ' && p.s[k] != '\t' {
			k++
		}
		lang := p.s[start:k]
		p.i = k
		if lang == "" {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.rest(), "^^<") {
		end := strings.IndexByte(p.s[p.i+3:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated datatype IRI")
		}
		dt := p.s[p.i+3 : p.i+3+end]
		p.i += 3 + end + 1
		return NewTypedLiteral(lex, dt), nil
	}
	return NewLiteral(lex), nil
}

// WriteNTriples serializes the graph in N-Triples syntax, one triple per
// line, in the order given.
func WriteNTriples(w io.Writer, g Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("rdf: writing triple: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("rdf: writing triple: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rdf: flushing output: %w", err)
	}
	return nil
}
