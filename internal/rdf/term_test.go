package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://x/a"), IRI, "<http://x/a>"},
		{"plain literal", NewLiteral("hi"), Literal, `"hi"`},
		{"typed literal", NewTypedLiteral("5", XSDInteger), Literal, `"5"^^<` + XSDInteger + `>`},
		{"string-typed literal collapses", NewTypedLiteral("x", XSDString), Literal, `"x"`},
		{"lang literal", NewLangLiteral("hej", "da"), Literal, `"hej"@da`},
		{"blank", NewBlank("b1"), Blank, "_:b1"},
		{"integer", NewInteger(-42), Literal, `"-42"^^<` + XSDInteger + `>`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Errorf("String() = %q, want %q", got, tc.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() || NewIRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() {
		t.Error("literal predicate wrong")
	}
	if !NewBlank("x").IsBlank() {
		t.Error("blank predicate wrong")
	}
	if !(Term{}).IsZero() {
		t.Error("zero term not detected")
	}
	if NewIRI("x").IsZero() {
		t.Error("non-zero term detected as zero")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Error("kind names wrong")
	}
	if TermKind(99).String() != "TermKind(99)" {
		t.Errorf("invalid kind formatting: %s", TermKind(99).String())
	}
}

func TestEscapeLiteralString(t *testing.T) {
	term := NewLiteral("line1\nline2\t\"quoted\" back\\slash")
	want := `"line1\nline2\t\"quoted\" back\\slash"`
	if got := term.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTermCompare(t *testing.T) {
	ordered := []Term{
		NewIRI("http://a"),
		NewIRI("http://b"),
		NewLiteral("a"),
		NewLangLiteral("a", "en"),
		NewLiteral("b"),
		NewBlank("x"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Errorf("Compare(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	a := NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("x"))
	b := NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("y"))
	c := NewTriple(NewIRI("b"), NewIRI("p"), NewIRI("x"))
	if a.Compare(b) >= 0 || b.Compare(c) >= 0 || a.Compare(a) != 0 {
		t.Error("triple ordering wrong")
	}
}

func TestGraphAppend(t *testing.T) {
	var g Graph
	g.Append(NewIRI("s"), NewIRI("p"), NewIRI("o"))
	g.Append(NewIRI("s2"), NewIRI("p"), NewLiteral("v"))
	if len(g) != 2 {
		t.Fatalf("len = %d, want 2", len(g))
	}
	if g[0].S.Value != "s" || g[1].O.Value != "v" {
		t.Error("appended triples wrong")
	}
}
