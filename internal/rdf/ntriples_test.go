package rdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	input := `
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/p> "plain" .
<http://x/s> <http://x/p> "typed"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s> <http://x/p> "tagged"@en .
_:b1 <http://x/p> _:b2 .
`
	g, err := ParseNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(g))
	}
	if g[0].O != NewIRI("http://x/o") {
		t.Errorf("triple 0 object = %v", g[0].O)
	}
	if g[1].O != NewLiteral("plain") {
		t.Errorf("triple 1 object = %v", g[1].O)
	}
	if g[2].O != NewTypedLiteral("typed", XSDInteger) {
		t.Errorf("triple 2 object = %v", g[2].O)
	}
	if g[3].O != NewLangLiteral("tagged", "en") {
		t.Errorf("triple 3 object = %v", g[3].O)
	}
	if g[4].S != NewBlank("b1") || g[4].O != NewBlank("b2") {
		t.Errorf("triple 4 = %v", g[4])
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> .`,                   // missing object
		`<http://s> "lit" <http://o> .`,             // literal predicate
		`<http://s> <http://p> <http://o>`,          // missing dot
		`<http://s> <http://p> "unterminated .`,     // unterminated literal
		`<unterminated <http://p> <http://o> .`,     // IRI swallows rest
		`_: <http://p> <http://o> .`,                // empty blank label
		`<http://s> <http://p> "x"@ .`,              // empty language
		`<http://s> <http://p> "x"^^<unterminated`,  // unterminated datatype
		`<http://s> <http://p> "x" extra-garbage .`, // garbage before dot
	}
	for _, in := range bad {
		if _, err := ParseNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := Graph{
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("a\nb\"c\\d")),
		NewTriple(NewBlank("n1"), NewIRI("http://x/q"), NewLangLiteral("x", "en")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/r"), NewInteger(7)),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, parsed) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", parsed, g)
	}
}

// randomTerm builds arbitrary terms with printable content for the
// property-based round-trip test.
func randomTerm(r *rand.Rand, allowLiteral bool) Term {
	letters := "abcdefghijklmnop \t\"\\\nqrstuvwxyz0123456789"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	iriSafe := func(n int) string {
		return strings.Map(func(c rune) rune {
			switch c {
			case ' ', '\t', '"', '\\', '\n', '>':
				return 'x'
			}
			return c
		}, randStr(n))
	}
	switch k := r.Intn(3); {
	case k == 0 || !allowLiteral:
		return NewIRI("http://example.org/" + iriSafe(1+r.Intn(10)))
	case k == 1:
		return NewBlank("b" + iriSafe(1+r.Intn(5)))
	default:
		switch r.Intn(3) {
		case 0:
			return NewLiteral(randStr(r.Intn(12)))
		case 1:
			return NewLangLiteral(strings.ReplaceAll(randStr(r.Intn(12)), " ", "_"), "en")
		default:
			return NewTypedLiteral(randStr(r.Intn(12)), "http://example.org/dt"+iriSafe(3))
		}
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := make(Graph, 0, n%16)
		for i := 0; i < int(n%16); i++ {
			g = append(g, Triple{
				S: randomTerm(r, false),
				P: NewIRI("http://example.org/p" + string(rune('a'+r.Intn(26)))),
				O: randomTerm(r, true),
			})
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		parsed, err := ParseNTriples(&buf)
		if err != nil {
			return false
		}
		if len(g) == 0 {
			return len(parsed) == 0
		}
		return reflect.DeepEqual(g, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := CommonPrefixes()
	iri, err := pm.Expand("rdf:type")
	if err != nil {
		t.Fatal(err)
	}
	if iri != RDFType {
		t.Errorf("Expand(rdf:type) = %q", iri)
	}
	if _, err := pm.Expand("nosuch:x"); err == nil {
		t.Error("unbound prefix expansion succeeded")
	}
	if _, err := pm.Expand("noColon"); err == nil {
		t.Error("expansion without colon succeeded")
	}
	q, ok := pm.Compact(RDFType)
	if !ok || q != "rdf:type" {
		t.Errorf("Compact = %q, %v", q, ok)
	}
	if _, ok := pm.Compact("http://unknown.example/x"); ok {
		t.Error("compacted unknown namespace")
	}
}

func TestPrefixMapRebind(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://one.example/")
	pm.Bind("ex", "http://two.example/")
	iri, err := pm.Expand("ex:a")
	if err != nil || iri != "http://two.example/a" {
		t.Errorf("Expand after rebind = %q, %v", iri, err)
	}
	// the old namespace must no longer compact
	if _, ok := pm.Compact("http://one.example/a"); ok {
		t.Error("stale namespace still compacts")
	}
	if got := len(pm.Bindings()); got != 1 {
		t.Errorf("Bindings() has %d entries, want 1", got)
	}
}

func TestPrefixMapLongestMatch(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://x.example/")
	pm.Bind("b", "http://x.example/deep/")
	q, ok := pm.Compact("http://x.example/deep/leaf")
	if !ok || q != "b:leaf" {
		t.Errorf("Compact = %q, %v; want b:leaf", q, ok)
	}
}

func TestParseTerm(t *testing.T) {
	cases := []Term{
		NewIRI("http://x/a"),
		NewLiteral("plain"),
		NewLiteral(`with "quotes" and \ backslash`),
		NewLangLiteral("hej", "da"),
		NewTypedLiteral("5", XSDInteger),
		NewBlank("b1"),
	}
	for _, want := range cases {
		got, err := ParseTerm(want.String())
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", want.String(), err)
			continue
		}
		if got != want {
			t.Errorf("ParseTerm(%q) = %#v, want %#v", want.String(), got, want)
		}
	}
	for _, bad := range []string{"", "plain", `<http://x`, `"unterminated`, `<http://x> trailing`} {
		if _, err := ParseTerm(bad); err == nil {
			t.Errorf("ParseTerm(%q) succeeded", bad)
		}
	}
}
