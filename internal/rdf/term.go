// Package rdf provides the core RDF data model used throughout the
// repository: terms (IRIs, literals, blank nodes), triples, prefix
// management, and an N-Triples/Turtle-subset reader and writer.
//
// The model follows RDF 1.1 Concepts: an RDF graph is a set of triples
// <s, p, o> with s ∈ IRI ∪ Blank, p ∈ IRI, and o ∈ IRI ∪ Blank ∪ Literal.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The possible kinds of an RDF term.
const (
	// IRI is an absolute IRI reference such as http://example.org/a.
	IRI TermKind = iota
	// Literal is an RDF literal; Value holds the lexical form.
	Literal
	// Blank is a blank node; Value holds the local label (without "_:" prefix).
	Blank
)

// String returns a human-readable name of the term kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. The zero value is the empty IRI, which is not a
// valid term; use the constructors NewIRI, NewLiteral, and NewBlank.
//
// Literals may carry a datatype IRI and a language tag. Per RDF 1.1 a
// literal has a language tag only if its datatype is rdf:langString; this
// package does not enforce that invariant but the parser produces
// conforming terms.
type Term struct {
	Kind TermKind
	// Value is the IRI string, the literal lexical form, or the blank
	// node label depending on Kind.
	Value string
	// Datatype is the datatype IRI for literals ("" means xsd:string).
	Datatype string
	// Lang is the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain (xsd:string) literal term.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang, Datatype: RDFLangString}
}

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewInteger returns an xsd:integer literal for n.
func NewInteger(n int64) Term {
	return Term{Kind: Literal, Value: fmt.Sprintf("%d", n), Datatype: XSDInteger}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero value (empty IRI), which is
// used in a few places as "no term".
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("?!invalid-term-kind-%d", t.Kind)
	}
}

// Compare orders terms: IRIs < Literals < Blanks, then by value, datatype,
// and language. It returns -1, 0, or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
