package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps prefix labels (without the trailing colon) to namespace
// IRIs, supporting expansion of qualified names and compaction of IRIs.
type PrefixMap struct {
	byPrefix map[string]string
	// ordered namespaces, longest first, for compaction
	namespaces []string
	byNS       map[string]string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: map[string]string{}, byNS: map[string]string{}}
}

// CommonPrefixes returns a prefix map preloaded with the vocabularies used
// throughout this repository (rdf, rdfs, xsd, sh, void).
func CommonPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Bind("rdf", RDFNS)
	pm.Bind("rdfs", RDFSNS)
	pm.Bind("xsd", XSDNS)
	pm.Bind("sh", SHNS)
	pm.Bind("void", VoidNS)
	return pm
}

// Bind associates prefix with the namespace IRI ns, replacing any previous
// binding of the same prefix.
func (pm *PrefixMap) Bind(prefix, ns string) {
	if old, ok := pm.byPrefix[prefix]; ok {
		delete(pm.byNS, old)
		for i, n := range pm.namespaces {
			if n == old {
				pm.namespaces = append(pm.namespaces[:i], pm.namespaces[i+1:]...)
				break
			}
		}
	}
	pm.byPrefix[prefix] = ns
	pm.byNS[ns] = prefix
	pm.namespaces = append(pm.namespaces, ns)
	sort.Slice(pm.namespaces, func(i, j int) bool {
		return len(pm.namespaces[i]) > len(pm.namespaces[j])
	})
}

// Expand resolves a qualified name "prefix:local" to a full IRI. It returns
// an error if the prefix is unbound or the input has no colon.
func (pm *PrefixMap) Expand(qname string) (string, error) {
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a qualified name", qname)
	}
	prefix, local := qname[:i], qname[i+1:]
	ns, ok := pm.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unbound prefix %q", prefix)
	}
	return ns + local, nil
}

// Compact rewrites iri as "prefix:local" using the longest matching bound
// namespace. The second result is false when no namespace matches.
func (pm *PrefixMap) Compact(iri string) (string, bool) {
	for _, ns := range pm.namespaces {
		if strings.HasPrefix(iri, ns) {
			local := iri[len(ns):]
			if local == "" || strings.ContainsAny(local, "/#:") {
				continue
			}
			return pm.byNS[ns] + ":" + local, true
		}
	}
	return iri, false
}

// Bindings returns the prefix→namespace pairs sorted by prefix, for
// deterministic serialization.
func (pm *PrefixMap) Bindings() [][2]string {
	out := make([][2]string, 0, len(pm.byPrefix))
	for p, ns := range pm.byPrefix {
		out = append(out, [2]string{p, ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
