package rdf

import (
	"strings"
	"testing"
)

func parseTurtle(t *testing.T, src string) Graph {
	t.Helper()
	g, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseTurtle: %v\ninput:\n%s", err, src)
	}
	return g
}

func TestParseTurtleBasics(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		# a comment
		ex:alice a ex:Person ;
			ex:name "Alice" ;
			ex:age 42 ;
			ex:height 1.75 ;
			ex:active true ;
			ex:knows ex:bob , ex:carol .
		<http://ex/bob> ex:name "Bob"@en .
	`)
	if len(g) != 8 {
		t.Fatalf("parsed %d triples, want 8:\n%v", len(g), g)
	}
	alice := NewIRI("http://ex/alice")
	checks := []Triple{
		{alice, NewIRI(RDFType), NewIRI("http://ex/Person")},
		{alice, NewIRI("http://ex/name"), NewLiteral("Alice")},
		{alice, NewIRI("http://ex/age"), NewTypedLiteral("42", XSDInteger)},
		{alice, NewIRI("http://ex/height"), NewTypedLiteral("1.75", XSDDecimal)},
		{alice, NewIRI("http://ex/active"), NewTypedLiteral("true", XSDBoolean)},
		{alice, NewIRI("http://ex/knows"), NewIRI("http://ex/bob")},
		{alice, NewIRI("http://ex/knows"), NewIRI("http://ex/carol")},
		{NewIRI("http://ex/bob"), NewIRI("http://ex/name"), NewLangLiteral("Bob", "en")},
	}
	for _, want := range checks {
		found := false
		for _, tr := range g {
			if tr == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing triple %v", want)
		}
	}
}

func TestParseTurtleSPARQLStylePrefix(t *testing.T) {
	g := parseTurtle(t, `
		PREFIX ex: <http://ex/>
		ex:a ex:p ex:b .
	`)
	if len(g) != 1 || g[0].S.Value != "http://ex/a" {
		t.Errorf("graph = %v", g)
	}
}

func TestParseTurtleAnonymousBlankNodes(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:shape ex:property [
			ex:path ex:name ;
			ex:count 5
		] ;
		ex:property [ ex:path ex:age ] .
		[] ex:standalone "x" .
	`)
	// 2 ex:property links + 3 nested + 1 standalone = 6
	if len(g) != 6 {
		t.Fatalf("parsed %d triples, want 6:\n%v", len(g), g)
	}
	// the two property blank nodes must be distinct
	var b1, b2 Term
	for _, tr := range g {
		if tr.P.Value == "http://ex/property" {
			if b1.IsZero() {
				b1 = tr.O
			} else {
				b2 = tr.O
			}
		}
	}
	if !b1.IsBlank() || !b2.IsBlank() || b1 == b2 {
		t.Errorf("blank nodes: %v, %v", b1, b2)
	}
}

func TestParseTurtleLabeledBlankNodes(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		_:x ex:p _:y .
		_:y ex:q "v" .
	`)
	if len(g) != 2 {
		t.Fatalf("parsed %d triples", len(g))
	}
	if g[0].O != g[1].S {
		t.Error("blank node labels not shared across statements")
	}
}

func TestParseTurtleTypedLiteralDatatypes(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		ex:a ex:p "5"^^xsd:integer .
		ex:a ex:q "d"^^<http://ex/dt> .
	`)
	if g[0].O != NewTypedLiteral("5", XSDInteger) {
		t.Errorf("qname datatype: %v", g[0].O)
	}
	if g[1].O != NewTypedLiteral("d", "http://ex/dt") {
		t.Errorf("iri datatype: %v", g[1].O)
	}
}

func TestParseTurtleBaseIgnored(t *testing.T) {
	g := parseTurtle(t, `
		@base <http://base/> .
		BASE <http://base2/>
		@prefix ex: <http://ex/> .
		ex:a ex:p ex:b .
	`)
	if len(g) != 1 {
		t.Errorf("graph = %v", g)
	}
}

func TestParseTurtleNegativeNumbers(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:a ex:p -7 ; ex:q -1.5 .
	`)
	if g[0].O != NewTypedLiteral("-7", XSDInteger) {
		t.Errorf("negative integer: %v", g[0].O)
	}
	if g[1].O != NewTypedLiteral("-1.5", XSDDecimal) {
		t.Errorf("negative decimal: %v", g[1].O)
	}
}

func TestParseTurtleTrailingSemicolon(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex/> .
		ex:a ex:p ex:b ;
			ex:q ex:c ;
			.
	`)
	if len(g) != 2 {
		t.Errorf("parsed %d triples, want 2", len(g))
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := map[string]string{
		"missing dot":        `@prefix ex: <http://ex/> . ex:a ex:p ex:b`,
		"unterminated iri":   `<http://ex/a <http://ex/p> <http://ex/b> .`,
		"unbound prefix":     `ex:a ex:p ex:b .`,
		"prefix without dot": `@prefix ex: <http://ex/>  ex:a ex:p ex:b .`,
		"unterminated bnode": `@prefix ex: <http://ex/> . ex:a ex:p [ ex:q ex:b .`,
		"unterminated lit":   `@prefix ex: <http://ex/> . ex:a ex:p "x .`,
		"empty lang":         `@prefix ex: <http://ex/> . ex:a ex:p "x"@ .`,
		"bare minus":         `@prefix ex: <http://ex/> . ex:a ex:p - .`,
	}
	for name, src := range bad {
		if _, err := ParseTurtle(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseTurtleErrorHasLineNumber(t *testing.T) {
	_, err := ParseTurtle(strings.NewReader("@prefix ex: <http://ex/> .\nex:a ex:p ex:b"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v, want line number", err)
	}
}
