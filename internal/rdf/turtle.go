package rdf

import (
	"fmt"
	"io"
	"strings"
)

// ParseTurtle reads a graph in the Turtle subset used by this repository
// (a superset of what shacl.WriteTurtle emits):
//
//   - @prefix and SPARQL-style PREFIX declarations, @base ignored
//   - subject predicate-object lists with ';' and ',' separators
//   - the 'a' keyword for rdf:type
//   - IRIs, prefixed names, blank node labels, and anonymous blank
//     nodes "[ ... ]" (nested property lists mint fresh blank nodes)
//   - literals with optional @lang or ^^datatype (IRI or prefixed
//     name), bare integers/decimals, and the booleans true/false
//   - '#' comments
//
// Collections "( ... )" and multi-line literals are not supported.
func ParseTurtle(r io.Reader) (Graph, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: reading turtle: %w", err)
	}
	p := &turtleParser{src: string(src), prefixes: NewPrefixMap()}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

type turtleParser struct {
	src      string
	i        int
	graph    Graph
	prefixes *PrefixMap
	bnodeSeq int
}

func (p *turtleParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.i, len(p.src))], "\n")
	return fmt.Errorf("rdf: turtle line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return nil
		}
		switch {
		case p.hasKeyword("@prefix") || p.hasKeyword("PREFIX"):
			if err := p.prefixDecl(); err != nil {
				return err
			}
		case p.hasKeyword("@base") || p.hasKeyword("BASE"):
			if err := p.baseDecl(); err != nil {
				return err
			}
		default:
			if err := p.triples(); err != nil {
				return err
			}
		}
	}
}

// hasKeyword reports whether the input at the cursor starts with kw
// followed by whitespace, case-sensitively for @-directives and
// case-insensitively for SPARQL-style keywords.
func (p *turtleParser) hasKeyword(kw string) bool {
	if p.i+len(kw) > len(p.src) {
		return false
	}
	got := p.src[p.i : p.i+len(kw)]
	if strings.HasPrefix(kw, "@") {
		if got != kw {
			return false
		}
	} else if !strings.EqualFold(got, kw) {
		return false
	}
	rest := p.src[p.i+len(kw):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == '\n' || rest[0] == '\r'
}

// hasBareword reports whether the input at the cursor is exactly word
// followed by a Turtle delimiter or statement terminator.
func (p *turtleParser) hasBareword(word string) bool {
	if !strings.HasPrefix(p.src[p.i:], word) {
		return false
	}
	rest := p.src[p.i+len(word):]
	return rest == "" || isTurtleDelim(rest[0]) || rest[0] == '.'
}

func (p *turtleParser) prefixDecl() error {
	sparqlStyle := !strings.HasPrefix(p.src[p.i:], "@")
	if sparqlStyle {
		p.i += len("PREFIX")
	} else {
		p.i += len("@prefix")
	}
	p.skipWS()
	colon := strings.IndexByte(p.src[p.i:], ':')
	if colon < 0 {
		return p.errf("prefix declaration without ':'")
	}
	label := strings.TrimSpace(p.src[p.i : p.i+colon])
	p.i += colon + 1
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes.Bind(label, iri)
	p.skipWS()
	if !sparqlStyle {
		if p.i >= len(p.src) || p.src[p.i] != '.' {
			return p.errf("@prefix declaration missing '.'")
		}
		p.i++
	} else if p.i < len(p.src) && p.src[p.i] == '.' {
		p.i++ // tolerate a trailing dot on PREFIX too
	}
	return nil
}

func (p *turtleParser) baseDecl() error {
	at := strings.HasPrefix(p.src[p.i:], "@")
	if at {
		p.i += len("@base")
	} else {
		p.i += len("BASE")
	}
	p.skipWS()
	if _, err := p.iriRef(); err != nil {
		return err
	}
	p.skipWS()
	if at {
		if p.i >= len(p.src) || p.src[p.i] != '.' {
			return p.errf("@base declaration missing '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != '.' {
		return p.errf("statement missing terminating '.'")
	}
	p.i++
	return nil
}

func (p *turtleParser) predicateObjectList(subj Term) error {
	for {
		p.skipWS()
		pred, err := p.verb()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.graph = append(p.graph, Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if p.i < len(p.src) && p.src[p.i] == ',' {
				p.i++
				continue
			}
			break
		}
		p.skipWS()
		if p.i < len(p.src) && p.src[p.i] == ';' {
			p.i++
			p.skipWS()
			// trailing ';' before '.' or ']' is legal Turtle
			if p.i < len(p.src) && (p.src[p.i] == '.' || p.src[p.i] == ']') {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) subject() (Term, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return Term{}, p.errf("unexpected end of input")
	}
	switch p.src[p.i] {
	case '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case '_':
		return p.blankLabel()
	case '[':
		return p.anonBlank()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) verb() (Term, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return Term{}, p.errf("unexpected end of input in predicate position")
	}
	if p.src[p.i] == 'a' && p.i+1 < len(p.src) && isTurtleDelim(p.src[p.i+1]) {
		p.i++
		return NewIRI(RDFType), nil
	}
	if p.src[p.i] == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return Term{}, p.errf("unexpected end of input in object position")
	}
	c := p.src[p.i]
	switch {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.anonBlank()
	case c == '"':
		return p.literal()
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		return p.number()
	default:
		if p.hasBareword("true") {
			p.i += 4
			return NewTypedLiteral("true", XSDBoolean), nil
		}
		if p.hasBareword("false") {
			p.i += 5
			return NewTypedLiteral("false", XSDBoolean), nil
		}
		return p.prefixedName()
	}
}

// anonBlank parses "[ ... ]", minting a fresh blank node and emitting
// the nested predicate-object list with it as subject.
func (p *turtleParser) anonBlank() (Term, error) {
	p.i++ // consume '['
	p.bnodeSeq++
	node := NewBlank(fmt.Sprintf("t%d", p.bnodeSeq))
	p.skipWS()
	if p.i < len(p.src) && p.src[p.i] == ']' {
		p.i++
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != ']' {
		return Term{}, p.errf("unterminated blank node property list")
	}
	p.i++
	return node, nil
}

func (p *turtleParser) blankLabel() (Term, error) {
	if !strings.HasPrefix(p.src[p.i:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.src) && !isTurtleDelim(p.src[p.i]) {
		p.i++
	}
	if p.i == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.src[start:p.i]), nil
}

func (p *turtleParser) iriRef() (string, error) {
	if p.i >= len(p.src) || p.src[p.i] != '<' {
		return "", p.errf("expected IRI")
	}
	end := strings.IndexByte(p.src[p.i:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.i+1 : p.i+end]
	p.i += end + 1
	return iri, nil
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.i
	for p.i < len(p.src) && !isTurtleDelim(p.src[p.i]) && p.src[p.i] != ';' && p.src[p.i] != ',' {
		p.i++
	}
	name := p.src[start:p.i]
	// a trailing '.' is a statement terminator unless followed by a
	// name character (e.g. a decimal inside a local name is not ours)
	for strings.HasSuffix(name, ".") {
		name = name[:len(name)-1]
		p.i--
	}
	if name == "" {
		return Term{}, p.errf("expected term, found %q", string(p.src[min(p.i, len(p.src)-1)]))
	}
	iri, err := p.prefixes.Expand(name)
	if err != nil {
		return Term{}, p.errf("%v", err)
	}
	return NewIRI(iri), nil
}

func (p *turtleParser) literal() (Term, error) {
	// find closing unescaped quote
	j := p.i + 1
	for j < len(p.src) {
		if p.src[j] == '\\' {
			j += 2
			continue
		}
		if p.src[j] == '"' {
			break
		}
		j++
	}
	if j >= len(p.src) {
		return Term{}, p.errf("unterminated literal")
	}
	lex := unescapeLiteral(p.src[p.i+1 : j])
	p.i = j + 1
	if strings.HasPrefix(p.src[p.i:], "@") {
		start := p.i + 1
		k := start
		for k < len(p.src) && (isNameByte(p.src[k]) || p.src[k] == '-') {
			k++
		}
		if k == start {
			return Term{}, p.errf("empty language tag")
		}
		lang := p.src[start:k]
		p.i = k
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.src[p.i:], "^^") {
		p.i += 2
		if p.i < len(p.src) && p.src[p.i] == '<' {
			dt, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			return NewTypedLiteral(lex, dt), nil
		}
		dt, err := p.prefixedName()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) number() (Term, error) {
	start := p.i
	if p.src[p.i] == '-' || p.src[p.i] == '+' {
		p.i++
	}
	decimal := false
	for p.i < len(p.src) {
		c := p.src[p.i]
		if c >= '0' && c <= '9' {
			p.i++
			continue
		}
		// a '.' is part of the number only when followed by a digit
		if c == '.' && p.i+1 < len(p.src) && p.src[p.i+1] >= '0' && p.src[p.i+1] <= '9' {
			decimal = true
			p.i++
			continue
		}
		break
	}
	lex := p.src[start:p.i]
	if lex == "" || lex == "-" || lex == "+" {
		return Term{}, p.errf("malformed number")
	}
	if decimal {
		return NewTypedLiteral(lex, XSDDecimal), nil
	}
	return NewTypedLiteral(lex, XSDInteger), nil
}

func (p *turtleParser) skipWS() {
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		case '#':
			for p.i < len(p.src) && p.src[p.i] != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func isTurtleDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', ';', ',', ']', ')', '"', '#':
		return true
	}
	return false
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
