package rdf

// Well-known vocabulary IRIs used across the repository.
const (
	// RDF core.
	RDFNS         = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFType       = RDFNS + "type"
	RDFLangString = RDFNS + "langString"

	// RDFS.
	RDFSNS    = "http://www.w3.org/2000/01/rdf-schema#"
	RDFSLabel = RDFSNS + "label"
	RDFSClass = RDFSNS + "Class"

	// XML Schema datatypes.
	XSDNS      = "http://www.w3.org/2001/XMLSchema#"
	XSDString  = XSDNS + "string"
	XSDInteger = XSDNS + "integer"
	XSDDecimal = XSDNS + "decimal"
	XSDBoolean = XSDNS + "boolean"
	XSDDate    = XSDNS + "date"

	// SHACL core plus the statistics extension proposed by the paper.
	SHNS            = "http://www.w3.org/ns/shacl#"
	SHNodeShape     = SHNS + "NodeShape"
	SHPropertyShape = SHNS + "PropertyShape"
	SHTargetClass   = SHNS + "targetClass"
	SHPath          = SHNS + "path"
	SHProperty      = SHNS + "property"
	SHDatatype      = SHNS + "datatype"
	SHClass         = SHNS + "class"
	SHNodeKind      = SHNS + "nodeKind"
	SHIRIKind       = SHNS + "IRI"
	SHLiteralKind   = SHNS + "Literal"
	// Statistics extension (Section 5 of the paper). sh:count, sh:minCount
	// and sh:maxCount reuse/extend SHACL attribute names; sh:distinctCount
	// is new. We additionally record the distinct subject count per
	// property shape, which the paper derives from the node shape count.
	SHCount                = SHNS + "count"
	SHMinCount             = SHNS + "minCount"
	SHMaxCount             = SHNS + "maxCount"
	SHDistinctCount        = SHNS + "distinctCount"
	SHDistinctSubjectCount = SHNS + "distinctSubjectCount"

	// VoID statistics vocabulary (global statistics graph).
	VoidNS                = "http://rdfs.org/ns/void#"
	VoidTriples           = VoidNS + "triples"
	VoidDistinctSubjects  = VoidNS + "distinctSubjects"
	VoidDistinctObjects   = VoidNS + "distinctObjects"
	VoidProperty          = VoidNS + "property"
	VoidPropertyPartition = VoidNS + "propertyPartition"
	VoidClassPartition    = VoidNS + "classPartition"
	VoidClass             = VoidNS + "class"
	VoidEntities          = VoidNS + "entities"
	VoidDataset           = VoidNS + "Dataset"
)
