package rdf

import "strings"

// Triple is a single RDF statement <subject, predicate, object>.
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	var b strings.Builder
	b.WriteString(t.S.String())
	b.WriteByte(' ')
	b.WriteString(t.P.String())
	b.WriteByte(' ')
	b.WriteString(t.O.String())
	b.WriteString(" .")
	return b.String()
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Graph is a convenience alias for a list of triples. It does not imply
// set semantics; use store.Store for a deduplicated indexed graph.
type Graph []Triple

// Append adds a triple built from the given terms.
func (g *Graph) Append(s, p, o Term) { *g = append(*g, Triple{S: s, P: p, O: o}) }
