// Package core implements the paper's primary contribution: the greedy
// join-ordering algorithm (Algorithm 1) that orders the triple patterns
// of a BGP by estimated join cardinality, over any statistics-backed
// estimator — global statistics (GS), shape statistics (SS), or one of
// the baseline estimators (Jena-style heuristic, GraphDB-style
// selectivity, Characteristic Sets, SumRDF).
//
// A Plan keeps the per-step join estimates it was built from (the E⋈
// column of Table 2) precisely so downstream layers can hold the planner
// accountable: the engine measures actual intermediate sizes in the same
// step order, and the observability layer (internal/obsv) pairs the two
// into per-pattern q-errors. Plan.Estimates exposes that sequence.
// OptimizeExhaustive provides the cost-optimal reference order for the
// greedy-vs-exact ablation.
package core

import (
	"fmt"
	"strings"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/sparql"
)

// Step records one position of a join order with its estimates.
type Step struct {
	// Pattern is the triple pattern executed at this step.
	Pattern sparql.TriplePattern
	// TP is the pattern's standalone estimate (the E_TP column of the
	// paper's Table 2).
	TP cardinality.TPStats
	// JoinEstimate is the estimated cardinality of joining this pattern
	// with the already-processed prefix (the E⋈ column); for the first
	// step it equals TP.Card.
	JoinEstimate float64
	// JoinedWith is the index (into Plan.Steps) of the processed pattern
	// the minimum estimate was achieved with; -1 for the first step.
	JoinedWith int
	// Cartesian is true when the step shares no variable with any
	// processed pattern and had to be combined as a Cartesian product.
	Cartesian bool
	// Algo names the join algorithm chosen for this step by
	// AnnotatePhysical: AlgoMerge for steps of the sort-merge prefix,
	// empty for the default index nested-loop join.
	Algo string
}

// Plan is a complete join order with cost bookkeeping.
type Plan struct {
	// Estimator names the statistics source that produced the plan.
	Estimator string
	// Steps lists the patterns in execution order.
	Steps []Step
	// Cost is the sum of the steps' join estimates, the objective of
	// Problem 2 (and the Σ row of Table 2).
	Cost float64
	// MergeVar and MergeWidth describe the sort-merge prefix chosen by
	// AnnotatePhysical: the leading MergeWidth steps execute as one
	// multi-way merge join keyed on MergeVar. MergeWidth 0 (the default)
	// means an all-nested-loop plan.
	MergeVar   string
	MergeWidth int
}

// Order returns the planned triple patterns in execution order.
func (p *Plan) Order() []sparql.TriplePattern {
	out := make([]sparql.TriplePattern, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.Pattern
	}
	return out
}

// Estimates returns the per-step join-cardinality estimates in execution
// order — index-aligned with engine Result.Intermediate, which is what
// query traces pair them against.
func (p *Plan) Estimates() []float64 {
	out := make([]float64, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.JoinEstimate
	}
	return out
}

// String renders the plan for explain output.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan (%s), estimated cost %.0f\n", p.Estimator, p.Cost)
	for i, s := range p.Steps {
		marker := ""
		if s.Cartesian {
			marker = " [cartesian]"
		}
		if s.Algo != "" {
			marker += " algo=" + s.Algo
		}
		fmt.Fprintf(&b, "%2d. %-60s card=%.0f join=%.0f%s\n",
			i+1, s.Pattern.String(), s.TP.Card, s.JoinEstimate, marker)
	}
	return b.String()
}

// Optimize computes a join order for q's BGP with Algorithm 1:
//
//  1. estimate every triple pattern's cardinality,
//  2. start from the cheapest pattern,
//  3. repeatedly append the remaining pattern with the least estimated
//     join cardinality against any already-processed pattern, preferring
//     connected patterns over Cartesian products,
//
// accumulating the estimated intermediate sizes as the plan cost.
// Ties break by pattern cardinality and then original pattern index, so
// plans are deterministic for a given estimator.
func Optimize(q *sparql.Query, est cardinality.Estimator) *Plan {
	n := len(q.Patterns)
	plan := &Plan{Estimator: est.Name()}
	if n == 0 {
		return plan
	}
	pair, _ := est.(cardinality.PairEstimator)

	stats := make([]cardinality.TPStats, n)
	for i, tp := range q.Patterns {
		stats[i] = est.EstimateTP(q, tp)
	}

	// Seed: the pattern with the least estimated cardinality.
	seed := 0
	for i := 1; i < n; i++ {
		if less(stats[i].Card, q.Patterns[i].Index, stats[seed].Card, q.Patterns[seed].Index) {
			seed = i
		}
	}
	used := make([]bool, n)
	used[seed] = true
	plan.Steps = append(plan.Steps, Step{
		Pattern:      q.Patterns[seed],
		TP:           stats[seed],
		JoinEstimate: stats[seed].Card,
		JoinedWith:   -1,
	})
	plan.Cost = stats[seed].Card

	for len(plan.Steps) < n {
		bestIdx := -1
		bestCost := 0.0
		bestWith := -1
		bestCartesian := false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			cost, with, cartesian := bestJoin(q, plan.Steps, q.Patterns[i], stats[i], pair)
			// Connected patterns beat Cartesian products regardless of
			// the numeric estimate; among equals the cheaper wins.
			better := false
			switch {
			case bestIdx == -1:
				better = true
			case cartesian != bestCartesian:
				better = !cartesian
			default:
				better = less(cost, q.Patterns[i].Index, bestCost, q.Patterns[bestIdx].Index)
			}
			if better {
				bestIdx, bestCost, bestWith, bestCartesian = i, cost, with, cartesian
			}
		}
		used[bestIdx] = true
		plan.Steps = append(plan.Steps, Step{
			Pattern:      q.Patterns[bestIdx],
			TP:           stats[bestIdx],
			JoinEstimate: bestCost,
			JoinedWith:   bestWith,
			Cartesian:    bestCartesian,
		})
		plan.Cost += bestCost
	}
	return plan
}

// bestJoin returns the minimum estimated cardinality of joining candidate
// with any processed step, the index of that step, and whether the best
// combination is a Cartesian product (no processed pattern shares a
// variable).
func bestJoin(q *sparql.Query, steps []Step, cand sparql.TriplePattern, candStats cardinality.TPStats, pair cardinality.PairEstimator) (cost float64, with int, cartesian bool) {
	cost = -1
	with = -1
	cartesian = true
	for si, s := range steps {
		joins := sparql.Joins(s.Pattern, cand)
		if len(joins) == 0 {
			if cartesian {
				c := s.TP.Card * candStats.Card
				if cost < 0 || c < cost {
					cost, with = c, si
				}
			}
			continue
		}
		var c float64
		if pair != nil {
			if pc, ok := pair.EstimatePair(q, s.Pattern, cand); ok {
				c = pc
			} else {
				c = cardinality.Join(s.TP, candStats, joins)
			}
		} else {
			c = cardinality.Join(s.TP, candStats, joins)
		}
		if cartesian {
			// first connected option trumps any Cartesian estimate
			cost, with, cartesian = c, si, false
			continue
		}
		if c < cost {
			cost, with = c, si
		}
	}
	return cost, with, cartesian
}

// less orders (cost, index) pairs for deterministic tie-breaking.
func less(c1 float64, i1 int, c2 float64, i2 int) bool {
	if c1 != c2 {
		return c1 < c2
	}
	return i1 < i2
}
