package core

import (
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/sparql"
)

// Planner produces a join order for a query. Implementations include the
// paper's estimator-driven Algorithm 1 (over GS, SS, CS, or SumRDF
// statistics) and the heuristic baselines that mimic Jena ARQ and
// GraphDB.
type Planner interface {
	// Name identifies the approach in experiment output ("SS", "GS",
	// "Jena", "GDB", "CS", "SumRDF").
	Name() string
	// Plan orders the query's BGP.
	Plan(q *sparql.Query) *Plan
}

// EstimatorPlanner runs Algorithm 1 over a cardinality estimator.
type EstimatorPlanner struct {
	Est cardinality.Estimator
	// Label overrides the estimator's name in reports when non-empty.
	Label string
}

// Name implements Planner.
func (p *EstimatorPlanner) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Est.Name()
}

// Plan implements Planner.
func (p *EstimatorPlanner) Plan(q *sparql.Query) *Plan { return Optimize(q, p.Est) }

// ShapeFirstPlanner is the paper's SS approach: Algorithm 1 over shape
// statistics when the query contains at least one type-defined triple
// pattern, falling back to global statistics otherwise (Section 6.1).
type ShapeFirstPlanner struct {
	SS *cardinality.ShapeEstimator
}

// Name implements Planner.
func (p *ShapeFirstPlanner) Name() string { return "SS" }

// Plan implements Planner.
func (p *ShapeFirstPlanner) Plan(q *sparql.Query) *Plan {
	if !q.HasTypePattern() {
		plan := Optimize(q, p.SS.Fallback)
		plan.Estimator = p.Name() // report under SS even when delegating
		return plan
	}
	return Optimize(q, p.SS)
}
