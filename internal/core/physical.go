// Physical-plan annotation: choosing merge join vs nested loop per join
// step, the paper's estimates cashing in for a second time. The greedy
// join ORDER (Algorithm 1) minimizes estimated intermediate sizes; with
// the order fixed, the same estimates decide whether the leading join
// steps run as a multi-way sort-merge join — worthwhile when re-scanning
// each input once in sorted order costs less than index-probing it once
// per prefix binding.

package core

import (
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// OrderProbe reports whether the execution source can enumerate tp in an
// ordering keyed on variable v (the engine's OrderedSource capability
// for the pattern's bound shape). Annotation is planner-side and must
// not touch data, so the capability check is injected.
type OrderProbe func(tp sparql.TriplePattern, v string) bool

// AlgoMerge marks a step executed as part of the sort-merge prefix.
// Steps without an Algo run as index nested-loop joins, the default.
const AlgoMerge = "merge"

// LeadAvailableProbe is the OrderProbe for every source backed by the
// store's four orderings (frozen store, live snapshot, shard view):
// availability depends only on which positions of the pattern are bound,
// so constants are marked with a placeholder ID and the shape is checked
// against store.LeadOrderAvailable.
func LeadAvailableProbe(tp sparql.TriplePattern, v string) bool {
	var pat store.IDTriple
	lead := -1
	mark := func(pt sparql.PatternTerm, pos int, dst *store.ID) {
		if pt.IsVar() {
			if pt.Var == v {
				lead = pos
			}
			return
		}
		*dst = 1
	}
	mark(tp.S, store.LeadS, &pat.S)
	mark(tp.P, store.LeadP, &pat.P)
	mark(tp.O, store.LeadO, &pat.O)
	if lead < 0 {
		return false
	}
	return store.LeadOrderAvailable(pat, lead)
}

// probePenalty weights one nested-loop index probe against one
// nested-loop row visit in the cost comparison. A probe is a binary
// search over the full index (log n cache-hostile comparisons) while a
// visit is a sequential advance plus slot binding, so a probe is worth
// several visits.
const probePenalty = 4

// popCost is the cost of one merge cursor pop relative to one
// nested-loop row visit. The merge path is batch-at-a-time and
// decode-free — a pop is a bounds check and a comparison on rows it
// streams in key order, with no per-row binding until a block actually
// aligns — so it runs nearly an order of magnitude cheaper than the
// nested-loop scan body. 1/8 is measured-conservative: low enough that
// star queries with large side legs still select merge, high enough
// that a selective nested-loop plan (tiny join estimates against big
// legs) stays nested-loop.
const popCost = 0.125

// LegRows reports how many index rows the source would scan to
// enumerate tp in an ordering keyed on v — the exact merge-leg input
// size (a range length, not an estimate). ok is false when the source
// cannot produce that ordering.
type LegRows func(tp sparql.TriplePattern, v string) (float64, bool)

// legRowsSource is the capability SourceLegRows needs, satisfied
// structurally by *store.Store, *live.Snapshot, and *shard.View (the
// engine's OrderedSource implementations).
type legRowsSource interface {
	Dict() *store.Dict
	LeadRuns(pat store.IDTriple, lead int) ([]store.SortedRun, bool)
}

// SourceLegRows builds a LegRows measuring exact leg sizes against src,
// or nil when src cannot enumerate lead-ordered runs. Constants absent
// from the dictionary yield zero rows (the pattern matches nothing).
func SourceLegRows(src any) LegRows {
	os, ok := src.(legRowsSource)
	if !ok {
		return nil
	}
	return func(tp sparql.TriplePattern, v string) (float64, bool) {
		var pat store.IDTriple
		lead := -1
		missing := false
		mark := func(pt sparql.PatternTerm, pos int, dst *store.ID) {
			if pt.IsVar() {
				if pt.Var == v {
					lead = pos
				}
				return
			}
			id, found := os.Dict().Lookup(pt.Term)
			if !found {
				missing = true
				return
			}
			*dst = id
		}
		mark(tp.S, store.LeadS, &pat.S)
		mark(tp.P, store.LeadP, &pat.P)
		mark(tp.O, store.LeadO, &pat.O)
		if lead < 0 {
			return 0, false
		}
		if missing {
			return 0, true
		}
		runs, ok := os.LeadRuns(pat, lead)
		if !ok {
			return 0, false
		}
		n := 0
		for _, r := range runs {
			n += len(r.Rows)
		}
		return float64(n), true
	}
}

// MergePrefix returns the longest eligible sort-merge prefix of steps:
// the shared merge variable and the number of leading steps that can
// merge on it. width is 0 when no prefix of length >= 2 is eligible.
// Eligibility mirrors the engine's own validation (engine.newMergeJoin):
// every prefix step contains the merge variable exactly once and no
// other repeated variable, prefix steps pairwise share no variable
// besides the merge variable, and probe accepts every (pattern, var)
// combination. Cost is not consulted — callers that want the cost-based
// decision use AnnotatePhysical; tests use MergePrefix to force the
// merge path regardless of estimates.
func MergePrefix(steps []Step, probe OrderProbe) (v string, width int) {
	if len(steps) < 2 {
		return "", 0
	}
	best := ""
	bestWidth := 0
	for _, j := range sparql.Joins(steps[0].Pattern, steps[1].Pattern) {
		w := eligibleWidth(steps, j.Var, probe)
		if w > bestWidth || (w == bestWidth && w > 0 && j.Var < best) {
			best, bestWidth = j.Var, w
		}
	}
	return best, bestWidth
}

// eligibleWidth returns the longest prefix of steps that can merge on v
// (0 when shorter than 2).
func eligibleWidth(steps []Step, v string, probe OrderProbe) int {
	w := 0
	for i, s := range steps {
		if !patternEligible(s.Pattern, v) || !probe(s.Pattern, v) {
			break
		}
		shared := false
		for p := 0; p < i; p++ {
			for _, j := range sparql.Joins(steps[p].Pattern, s.Pattern) {
				if j.Var != v {
					shared = true
				}
			}
		}
		if shared {
			break
		}
		w = i + 1
	}
	if w < 2 {
		return 0
	}
	return w
}

// patternEligible reports whether tp contains v exactly once and no
// other variable twice — the shape whose block cross-product needs no
// equality checks.
func patternEligible(tp sparql.TriplePattern, v string) bool {
	var vars []string
	for _, pt := range []sparql.PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() {
			vars = append(vars, pt.Var)
		}
	}
	n := 0
	for i, a := range vars {
		if a == v {
			n++
		}
		for j := i + 1; j < len(vars); j++ {
			if vars[j] == a {
				return false
			}
		}
	}
	return n == 1
}

// AnnotatePhysical decides, per join step, whether the plan's leading
// steps run as a multi-way sort-merge join, and records the decision on
// the plan (Step.Algo, Plan.MergeVar/MergeWidth — rendered in the plan
// string and consumed by the engine via Options.MergeWidth/MergeVar).
//
// For each eligible prefix width k on merge variable v, the two
// algorithms are priced in nested-loop row-visit units:
//
//	nested loop ≈ Σ_{i=1..k-1} (E⋈_i + probePenalty·E⋈_{i-1})   rows visited + probes
//	merge       ≈ Σ_{i=1..k-1} popCost·rows_i                   one sorted pass per leg
//
// (Leg 0 is enumerated by both and cancels conservatively.) The
// nested-loop side comes from the paper's join estimates; the merge
// side needs no estimate at all when legRows is non-nil — a leg's input
// is a contiguous index range whose length the source reports exactly.
// This split matters: the shape-constrained per-step Card can be
// orders of magnitude below the full range a merge leg must scan (a
// star over `?x name ?n` touches every name triple, not just the
// department names the estimate predicts), and pricing legs by Card
// selects merge exactly where it loses. With legRows nil (tests,
// sources without range counting) the estimate is the fallback.
//
// The largest k with positive benefit wins; no positive k leaves the
// plan fully nested-loop. The decision is advisory: the engine
// re-validates eligibility at execution time and falls back silently,
// so a stale or wrong annotation can cost performance but never
// correctness.
func AnnotatePhysical(p *Plan, probe OrderProbe, legRows LegRows) {
	p.MergeVar, p.MergeWidth = "", 0
	for i := range p.Steps {
		p.Steps[i].Algo = ""
	}
	v, maxW := MergePrefix(p.Steps, probe)
	if maxW < 2 {
		return
	}
	costMemo := make([]float64, len(p.Steps))
	for i := range costMemo {
		costMemo[i] = -1
	}
	mergeCost := func(i int) float64 {
		if costMemo[i] >= 0 {
			return costMemo[i]
		}
		c := p.Steps[i].TP.Card
		if legRows != nil {
			if rows, ok := legRows(p.Steps[i].Pattern, v); ok {
				c = popCost * rows
			}
		}
		costMemo[i] = c
		return c
	}
	bestW := 0
	bestBenefit := 0.0
	for k := 2; k <= maxW; k++ {
		benefit := 0.0
		for i := 1; i < k; i++ {
			nl := p.Steps[i].JoinEstimate + probePenalty*p.Steps[i-1].JoinEstimate
			benefit += nl - mergeCost(i)
		}
		if benefit > bestBenefit {
			bestW, bestBenefit = k, benefit
		}
	}
	if bestW < 2 {
		return
	}
	p.MergeVar, p.MergeWidth = v, bestW
	for i := 0; i < bestW; i++ {
		p.Steps[i].Algo = AlgoMerge
	}
}
