package core

import (
	"math/rand"
	"strings"
	"testing"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/store"
)

// env bundles a small LUBM world with both estimators.
type env struct {
	st *store.Store
	gs *cardinality.GlobalEstimator
	ss *cardinality.ShapeEstimator
}

func newEnv(t testing.TB) *env {
	t.Helper()
	g := lubm.Generate(lubm.Config{Universities: 1, Seed: 42})
	st := store.Load(g)
	global := gstats.Compute(st)
	shapes := lubm.Shapes()
	if err := annotator.Annotate(shapes, st); err != nil {
		t.Fatal(err)
	}
	return &env{
		st: st,
		gs: cardinality.NewGlobalEstimator(global),
		ss: cardinality.NewShapeEstimator(shapes, global),
	}
}

const prefix = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"

func TestOptimizeCoversAllPatterns(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:GraduateStudent .
		?x ub:advisor ?y .
		?y a ub:FullProfessor .
		?y ub:teacherOf ?c .
		?x ub:takesCourse ?c .
	}`)
	plan := Optimize(q, e.ss)
	if len(plan.Steps) != len(q.Patterns) {
		t.Fatalf("plan has %d steps, want %d", len(plan.Steps), len(q.Patterns))
	}
	seen := map[int]bool{}
	for _, s := range plan.Steps {
		if seen[s.Pattern.Index] {
			t.Errorf("pattern %d planned twice", s.Pattern.Index)
		}
		seen[s.Pattern.Index] = true
	}
	if plan.Cost <= 0 {
		t.Errorf("cost = %v", plan.Cost)
	}
	if !strings.Contains(plan.String(), "plan (SS)") {
		t.Errorf("String() = %q", plan.String())
	}
}

func TestOptimizeDeterministicUnderShuffle(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?A a ub:FullProfessor .
		?A ub:name ?N .
		?A ub:teacherOf ?C .
		?C a ub:GraduateCourse .
		?X ub:advisor ?A .
		?X a ub:GraduateStudent .
		?X ub:degreeFrom ?U .
		?Y ub:takesCourse ?C .
		?Y a ub:GraduateStudent .
	}`)
	base := Optimize(q, e.ss)
	baseSig := planSignature(base)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		cp := q.Clone()
		rng.Shuffle(len(cp.Patterns), func(i, j int) {
			cp.Patterns[i], cp.Patterns[j] = cp.Patterns[j], cp.Patterns[i]
		})
		plan := Optimize(cp, e.ss)
		if got := planSignature(plan); got != baseSig {
			t.Fatalf("shuffle %d changed the plan:\n got %s\nwant %s", trial, got, baseSig)
		}
	}
}

// planSignature is order-of-original-index, ignoring shuffle positions.
func planSignature(p *Plan) string {
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString(s.Pattern.String())
		b.WriteByte('|')
	}
	return b.String()
}

func TestOptimizeSeedsWithCheapestPattern(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x ub:name ?n .
		?x a ub:FullProfessor .
	}`)
	// Under global statistics the name pattern counts every ub:name
	// triple in the graph, so the type pattern must seed the plan.
	plan := Optimize(q, e.gs)
	if !plan.Steps[0].Pattern.IsTypePattern() {
		t.Errorf("seed = %v, want the type pattern", plan.Steps[0].Pattern)
	}
	if plan.Steps[0].JoinedWith != -1 {
		t.Error("seed must not have a join partner")
	}
}

func TestOptimizeAvoidsCartesianWhenConnected(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:FullProfessor .
		?x ub:teacherOf ?c .
		?y a ub:GraduateStudent .
		?y ub:takesCourse ?c .
	}`)
	plan := Optimize(q, e.ss)
	// only the final disconnected component may be Cartesian — here the
	// query is fully connected, so no step may be.
	for i, s := range plan.Steps {
		if s.Cartesian {
			t.Errorf("step %d is Cartesian in a connected query: %v", i, s.Pattern)
		}
	}
}

func TestOptimizeCartesianWhenForced(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:FullProfessor .
		?y a ub:Department .
	}`)
	plan := Optimize(q, e.ss)
	if !plan.Steps[1].Cartesian {
		t.Error("disconnected query must mark the Cartesian step")
	}
}

func TestOptimizeCostIsSumOfSteps(t *testing.T) {
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x a ub:GraduateStudent .
		?x ub:advisor ?y .
		?x ub:takesCourse ?c .
	}`)
	plan := Optimize(q, e.gs)
	sum := 0.0
	for _, s := range plan.Steps {
		sum += s.JoinEstimate
	}
	if sum != plan.Cost {
		t.Errorf("cost %v != Σ steps %v", plan.Cost, sum)
	}
}

func TestOptimizeEmptyQuery(t *testing.T) {
	e := newEnv(t)
	plan := Optimize(&sparql.Query{}, e.gs)
	if len(plan.Steps) != 0 || plan.Cost != 0 {
		t.Errorf("empty plan = %+v", plan)
	}
}

func TestShapeVsGlobalOrderingDiffers(t *testing.T) {
	// The paper's example query Q: shape statistics must pull ?A ub:name
	// (85k scoped vs millions global) earlier than global statistics do.
	e := newEnv(t)
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?A a ub:FullProfessor .
		?A ub:name ?N .
		?A ub:teacherOf ?C .
		?C a ub:GraduateCourse .
		?X ub:advisor ?A .
		?X a ub:GraduateStudent .
		?X ub:degreeFrom ?U .
		?Y ub:takesCourse ?C .
		?Y a ub:GraduateStudent .
	}`)
	gsPlan := Optimize(q, e.gs)
	ssPlan := Optimize(q, e.ss)
	pos := func(p *Plan, patternIdx int) int {
		for i, s := range p.Steps {
			if s.Pattern.Index == patternIdx {
				return i
			}
		}
		return -1
	}
	// pattern 1 is "?A ub:name ?N"
	if pos(ssPlan, 1) > pos(gsPlan, 1) {
		t.Errorf("SS places name pattern at %d, GS at %d; shape stats should not delay it",
			pos(ssPlan, 1), pos(gsPlan, 1))
	}
}

func TestOptimizeExhaustiveNeverWorse(t *testing.T) {
	e := newEnv(t)
	queries := []string{
		prefix + `SELECT * WHERE {
			?x a ub:GraduateStudent .
			?x ub:advisor ?y .
			?y a ub:FullProfessor .
			?y ub:teacherOf ?c .
			?x ub:takesCourse ?c .
		}`,
		prefix + `SELECT * WHERE {
			?p a ub:FullProfessor .
			?p ub:name ?n .
			?p ub:teacherOf ?c .
			?c a ub:GraduateCourse .
		}`,
	}
	for _, src := range queries {
		q := sparql.MustParse(src)
		greedy := Optimize(q, e.ss)
		exact := OptimizeExhaustive(q, e.ss)
		if exact == nil {
			t.Fatal("exhaustive returned nil for a small query")
		}
		if exact.Cost > greedy.Cost {
			t.Errorf("exhaustive cost %v worse than greedy %v", exact.Cost, greedy.Cost)
		}
		if len(exact.Steps) != len(q.Patterns) {
			t.Errorf("exhaustive plan incomplete")
		}
	}
}

func TestOptimizeExhaustiveRejectsLargeQueries(t *testing.T) {
	e := newEnv(t)
	var sb strings.Builder
	sb.WriteString(prefix + "SELECT * WHERE {\n?x a ub:FullProfessor .\n")
	for i := 0; i < MaxExhaustivePatterns; i++ {
		sb.WriteString("?x ub:name ?n" + string(rune('a'+i)) + " .\n")
	}
	sb.WriteString("}")
	q := sparql.MustParse(sb.String())
	if OptimizeExhaustive(q, e.ss) != nil {
		t.Error("exhaustive accepted an oversized query")
	}
}

func TestPlannersImplementInterface(t *testing.T) {
	e := newEnv(t)
	var planners []Planner = []Planner{
		&EstimatorPlanner{Est: e.gs},
		&EstimatorPlanner{Est: e.gs, Label: "custom"},
		&ShapeFirstPlanner{SS: e.ss},
	}
	if planners[0].Name() != "GS" || planners[1].Name() != "custom" || planners[2].Name() != "SS" {
		t.Error("planner names wrong")
	}
	q := sparql.MustParse(prefix + `SELECT * WHERE { ?x a ub:FullProfessor . ?x ub:name ?n }`)
	for _, p := range planners {
		if plan := p.Plan(q); len(plan.Steps) != 2 {
			t.Errorf("%s: plan incomplete", p.Name())
		}
	}
}

func TestShapeFirstPlannerFallsBackWithoutTypes(t *testing.T) {
	e := newEnv(t)
	p := &ShapeFirstPlanner{SS: e.ss}
	q := sparql.MustParse(prefix + `SELECT * WHERE {
		?x ub:advisor ?y .
		?y ub:teacherOf ?c .
	}`)
	plan := p.Plan(q)
	if plan.Estimator != "SS" {
		t.Errorf("plan label = %q (fallback must still report SS)", plan.Estimator)
	}
	// the fallback must equal the pure-GS plan order
	gsPlan := Optimize(q, e.gs)
	if planSignature(plan) != planSignature(gsPlan) {
		t.Error("fallback plan differs from GS plan")
	}
}
