package core

import (
	"math"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/sparql"
)

// MaxExhaustivePatterns bounds the BGP size OptimizeExhaustive accepts;
// beyond it the branch-and-bound search space is impractical.
const MaxExhaustivePatterns = 10

// OptimizeExhaustive finds the join order minimizing the same cost
// objective as Optimize (sum of estimated intermediate cardinalities,
// estimated pairwise against the best processed partner) by
// branch-and-bound over all permutations. It returns nil when the BGP
// has more than MaxExhaustivePatterns patterns.
//
// It exists for the AB3 ablation: quantifying how far the O(n³) greedy
// heuristic lands from the cost-optimal order under the same estimates.
func OptimizeExhaustive(q *sparql.Query, est cardinality.Estimator) *Plan {
	n := len(q.Patterns)
	if n == 0 || n > MaxExhaustivePatterns {
		return nil
	}
	pair, _ := est.(cardinality.PairEstimator)
	stats := make([]cardinality.TPStats, n)
	for i, tp := range q.Patterns {
		stats[i] = est.EstimateTP(q, tp)
	}

	best := Optimize(q, est) // greedy solution seeds the bound
	bound := best.Cost

	used := make([]bool, n)
	var steps []Step
	var rec func(cost float64)
	rec = func(cost float64) {
		if cost >= bound && len(steps) > 0 {
			return
		}
		if len(steps) == n {
			if cost < bound {
				bound = cost
				cp := append([]Step(nil), steps...)
				best = &Plan{Estimator: est.Name(), Steps: cp, Cost: cost}
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var stepCost float64
			var with int
			var cartesian bool
			if len(steps) == 0 {
				stepCost, with, cartesian = stats[i].Card, -1, false
			} else {
				stepCost, with, cartesian = bestJoin(q, steps, q.Patterns[i], stats[i], pair)
			}
			used[i] = true
			steps = append(steps, Step{
				Pattern:      q.Patterns[i],
				TP:           stats[i],
				JoinEstimate: stepCost,
				JoinedWith:   with,
				Cartesian:    cartesian,
			})
			rec(cost + stepCost)
			steps = steps[:len(steps)-1]
			used[i] = false
		}
	}
	rec(0)
	if best.Cost > bound {
		// unreachable: bound only shrinks; kept as an invariant guard
		best.Cost = math.Min(best.Cost, bound)
	}
	return best
}
