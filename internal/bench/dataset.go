// Package bench is the experiment harness: it assembles datasets with all
// statistics artifacts (annotated shapes, global statistics,
// characteristic sets, SumRDF summaries), runs every planning approach
// over every workload, and renders the paper's tables and figure series
// (Tables 2–3, Figures 4a–4f, the WatDiv appendix, and the preprocessing
// overhead comparison).
package bench

import (
	"fmt"
	"time"

	"rdfshapes/internal/annotator"
	"rdfshapes/internal/baselines/charsets"
	"rdfshapes/internal/baselines/heuristic"
	"rdfshapes/internal/baselines/selectivity"
	"rdfshapes/internal/baselines/sumrdf"
	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/core"
	"rdfshapes/internal/datagen/lubm"
	"rdfshapes/internal/datagen/watdiv"
	"rdfshapes/internal/datagen/yago"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/shacl"
	"rdfshapes/internal/store"
	"rdfshapes/internal/workloads"
)

// PrepStats records preprocessing cost and artifact sizes, the inputs of
// the paper's overhead comparison (Section 7, "Implementation").
type PrepStats struct {
	// GlobalTime is the time to compute extended-VoID statistics.
	GlobalTime time.Duration
	// AnnotateTime is the Shapes Annotator runtime (the paper's 16 min
	// for LUBM at 91 M triples).
	AnnotateTime time.Duration
	// CSTime is characteristic-set extraction time (paper: 6.2 h LUBM).
	CSTime time.Duration
	// SummaryTime is SumRDF summarization time (paper: 4.5 min LUBM).
	SummaryTime time.Duration
	// ShapesPlainBytes and ShapesAnnotatedBytes are the Turtle sizes of
	// the shapes graph before and after annotation (paper: 45→68 KB).
	ShapesPlainBytes     int
	ShapesAnnotatedBytes int
	// CSBytes/CSSets describe the characteristic-set artifact.
	CSBytes int64
	CSSets  int
	// SummaryBytes/SummaryBuckets/SummaryEdges describe the summary.
	SummaryBytes   int64
	SummaryBuckets int
	SummaryEdges   int
}

// Dataset bundles a generated dataset with every statistics artifact and
// its workload.
type Dataset struct {
	Name     string
	Store    *store.Store
	Global   *gstats.Global
	Shapes   *shacl.ShapesGraph
	CS       *charsets.Estimator
	Summary  *sumrdf.Summary
	Queries  []workloads.Query
	Prefixes *rdf.PrefixMap
	Prep     PrepStats
}

// Scale selects dataset sizes: Small keeps unit tests fast, Medium is the
// benchmark default.
type Scale int

// The supported scales.
const (
	Small Scale = iota
	Medium
)

// SummaryTargetSize is the default SumRDF bucket budget (the paper uses
// "tens of thousands" at 100–1000× our data scale; 1024 keeps the same
// summary-to-data ratio).
const SummaryTargetSize = 1024

// LUBMDataset builds the LUBM analog with shipped shapes.
func LUBMDataset(scale Scale) (*Dataset, error) {
	unis := 1
	if scale == Medium {
		unis = 3
	}
	g := lubm.Generate(lubm.Config{Universities: unis, Seed: 7})
	return assemble("LUBM", g, lubm.Shapes(), workloads.LUBM(), lubm.Prefixes())
}

// WatDivDataset builds the WatDiv analog with shipped shapes.
func WatDivDataset(scale Scale) (*Dataset, error) {
	products := 1500
	if scale == Medium {
		products = 5000
	}
	g := watdiv.Generate(watdiv.Config{Products: products, Seed: 11})
	return assemble("WatDiv", g, watdiv.Shapes(), workloads.WatDiv(), watdiv.Prefixes())
}

// YAGODataset builds the YAGO-4 analog; its shapes are inferred from the
// data (the SHACLGEN analog), as the paper does for YAGO.
func YAGODataset(scale Scale) (*Dataset, error) {
	entities := 8000
	if scale == Medium {
		entities = 25000
	}
	g := yago.Generate(yago.Config{Entities: entities, Seed: 13})
	st := store.Load(g)
	shapes, err := shacl.InferShapes(st)
	if err != nil {
		return nil, fmt.Errorf("bench: inferring YAGO shapes: %w", err)
	}
	return assembleStore("YAGO-4", st, shapes, workloads.YAGO(), yago.Prefixes())
}

func assemble(name string, g rdf.Graph, shapes *shacl.ShapesGraph, qs []workloads.Query, pm *rdf.PrefixMap) (*Dataset, error) {
	return assembleStore(name, store.Load(g), shapes, qs, pm)
}

func assembleStore(name string, st *store.Store, shapes *shacl.ShapesGraph, qs []workloads.Query, pm *rdf.PrefixMap) (*Dataset, error) {
	d := &Dataset{Name: name, Store: st, Shapes: shapes, Queries: qs, Prefixes: pm}

	start := time.Now()
	d.Global = gstats.Compute(st)
	d.Prep.GlobalTime = time.Since(start)

	d.Prep.ShapesPlainBytes = shapes.TurtleSize()
	start = time.Now()
	if err := annotator.Annotate(shapes, st); err != nil {
		return nil, fmt.Errorf("bench: annotating %s shapes: %w", name, err)
	}
	d.Prep.AnnotateTime = time.Since(start)
	d.Prep.ShapesAnnotatedBytes = shapes.TurtleSize()

	start = time.Now()
	d.CS = charsets.Build(st, d.Global)
	d.Prep.CSTime = time.Since(start)
	d.Prep.CSSets = d.CS.NumSets()
	d.Prep.CSBytes = d.CS.ApproxBytes()

	start = time.Now()
	summary, err := sumrdf.Build(st, d.Global, SummaryTargetSize)
	if err != nil {
		return nil, fmt.Errorf("bench: summarizing %s: %w", name, err)
	}
	d.Summary = summary
	d.Prep.SummaryTime = time.Since(start)
	d.Prep.SummaryBuckets = summary.NumBuckets()
	d.Prep.SummaryEdges = summary.NumEdges()
	d.Prep.SummaryBytes = summary.ApproxBytes()
	return d, nil
}

// ApproachNames lists the compared approaches in the paper's order.
var ApproachNames = []string{"SS", "GS", "Jena", "GDB", "CS", "SumRDF"}

// Planners returns one planner per approach, in ApproachNames order.
func (d *Dataset) Planners() []core.Planner {
	ss := cardinality.NewShapeEstimator(d.Shapes, d.Global)
	return []core.Planner{
		&core.ShapeFirstPlanner{SS: ss},
		&core.EstimatorPlanner{Est: cardinality.NewGlobalEstimator(d.Global)},
		heuristic.New(),
		selectivity.New(d.Global),
		&core.EstimatorPlanner{Est: d.CS},
		&core.EstimatorPlanner{Est: d.Summary},
	}
}

// Planner returns the planner for one approach name.
func (d *Dataset) Planner(name string) (core.Planner, error) {
	for _, p := range d.Planners() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown approach %q", name)
}

// Estimator returns the final-cardinality estimator for an approach, or
// nil for Jena (a pure heuristic with no cardinality model).
func (d *Dataset) Estimator(name string) cardinality.Estimator {
	switch name {
	case "SS":
		return cardinality.NewShapeEstimator(d.Shapes, d.Global)
	case "GS", "GDB":
		return cardinality.NewGlobalEstimator(d.Global)
	case "CS":
		return d.CS
	case "SumRDF":
		return d.Summary
	default:
		return nil
	}
}
