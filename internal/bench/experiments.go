package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rdfshapes/internal/cardinality"
	"rdfshapes/internal/engine"
	"rdfshapes/internal/sparql"
	"rdfshapes/internal/workloads"
)

// DefaultMaxOps is the per-execution operation budget, the analog of the
// paper's 10-minute query timeout.
const DefaultMaxOps = 20 << 20

// DefaultRuns matches the paper: every plan is executed 10× with the BGP
// shuffled before each optimization.
const DefaultRuns = 10

// RunConfig tunes experiment execution.
type RunConfig struct {
	// Runs is the number of shuffled repetitions per query and approach.
	Runs int
	// MaxOps is the per-execution operation budget (0 = DefaultMaxOps).
	MaxOps int64
	// Seed drives the shuffles.
	Seed int64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Runs <= 0 {
		c.Runs = DefaultRuns
	}
	if c.MaxOps <= 0 {
		c.MaxOps = DefaultMaxOps
	}
	return c
}

// RuntimeResult is one bar of Figures 4a/4b: a query × approach cell with
// mean and standard deviation over shuffled runs.
type RuntimeResult struct {
	Query    string
	Approach string
	// MeanMs and StdMs are wall-clock execution statistics.
	MeanMs, StdMs float64
	// MeanOps is the mean deterministic work measure (index rows
	// visited), robust against machine noise.
	MeanOps float64
	// TimedOut is true when any run exceeded the operation budget.
	TimedOut bool
}

// RuntimeExperiment reproduces Figures 4a/4b: for every query and every
// approach, shuffle the BGP, plan, execute, and record runtime statistics.
func RuntimeExperiment(d *Dataset, cfg RunConfig) ([]RuntimeResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	planners := d.Planners()
	var out []RuntimeResult
	for _, wq := range d.Queries {
		parsed, err := wq.Parse()
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %s/%s: %w", d.Name, wq.Name, err)
		}
		for _, pl := range planners {
			res := RuntimeResult{Query: wq.Name, Approach: pl.Name()}
			var times, ops []float64
			for run := 0; run < cfg.Runs; run++ {
				q := parsed.Clone()
				rng.Shuffle(len(q.Patterns), func(i, j int) {
					q.Patterns[i], q.Patterns[j] = q.Patterns[j], q.Patterns[i]
				})
				plan := pl.Plan(q)
				start := time.Now()
				er, err := engine.Run(d.Store, plan.Order(), engine.Options{
					CountOnly: true,
					MaxOps:    cfg.MaxOps,
				})
				if err != nil {
					return nil, fmt.Errorf("bench: executing %s/%s with %s: %w", d.Name, wq.Name, pl.Name(), err)
				}
				times = append(times, float64(time.Since(start).Microseconds())/1000)
				ops = append(ops, float64(er.Ops))
				if er.TimedOut {
					res.TimedOut = true
				}
			}
			res.MeanMs, res.StdMs = meanStd(times)
			res.MeanOps, _ = meanStd(ops)
			out = append(out, res)
		}
	}
	return out, nil
}

// QErrorResult is one point of Figures 4c/4d.
type QErrorResult struct {
	Query    string
	Approach string
	Estimate float64
	True     float64
	QError   float64
}

// QErrorExperiment reproduces Figures 4c/4d: the q-error of every
// approach's final result cardinality estimate (Jena has no cardinality
// model and is excluded, as in the paper).
func QErrorExperiment(d *Dataset, cfg RunConfig) ([]QErrorResult, error) {
	cfg = cfg.withDefaults()
	var out []QErrorResult
	for _, wq := range d.Queries {
		parsed, err := wq.Parse()
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %s/%s: %w", d.Name, wq.Name, err)
		}
		truth, err := trueCardinality(d, parsed, cfg.MaxOps)
		if err != nil {
			return nil, err
		}
		for _, name := range ApproachNames {
			est := d.Estimator(name)
			if est == nil {
				continue // Jena
			}
			var estimate float64
			switch e := est.(type) {
			case interface {
				EstimateBGP(q *sparql.Query) float64
			}:
				// CS and SumRDF estimate whole BGPs natively.
				estimate = e.EstimateBGP(parsed)
			default:
				// GS/SS/GDB: sequence estimation along the approach's
				// own plan.
				pl, err := d.Planner(name)
				if err != nil {
					return nil, err
				}
				plan := pl.Plan(parsed)
				estimate, _ = cardinality.SequenceEstimate(parsed, plan.Order(), est)
			}
			out = append(out, QErrorResult{
				Query:    wq.Name,
				Approach: name,
				Estimate: estimate,
				True:     truth,
				QError:   cardinality.QError(estimate, truth),
			})
		}
	}
	return out, nil
}

// CostResult is one point of Figures 4e/4f: a plan's estimated cost (sum
// of estimated intermediate cardinalities, Algorithm 1's bookkeeping)
// against its true cost (sum of actual intermediate sizes).
type CostResult struct {
	Query    string
	Approach string
	// EstimatedCost is Plan.Cost.
	EstimatedCost float64
	// TrueCost is Σ over steps of the actual intermediate result size
	// when executing the plan's order.
	TrueCost float64
	// TimedOut marks budget-interrupted truth (TrueCost is then a lower
	// bound).
	TimedOut bool
}

// CostExperiment reproduces Figures 4e/4f for the SS and GS approaches.
func CostExperiment(d *Dataset, cfg RunConfig) ([]CostResult, error) {
	cfg = cfg.withDefaults()
	var out []CostResult
	for _, wq := range d.Queries {
		parsed, err := wq.Parse()
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %s/%s: %w", d.Name, wq.Name, err)
		}
		for _, name := range []string{"SS", "GS"} {
			pl, err := d.Planner(name)
			if err != nil {
				return nil, err
			}
			plan := pl.Plan(parsed)
			er, err := engine.Run(d.Store, plan.Order(), engine.Options{
				CountOnly: true,
				MaxOps:    cfg.MaxOps,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: executing %s/%s: %w", d.Name, wq.Name, err)
			}
			trueCost := 0.0
			for _, n := range er.Intermediate {
				trueCost += float64(n)
			}
			out = append(out, CostResult{
				Query:         wq.Name,
				Approach:      name,
				EstimatedCost: plan.Cost,
				TrueCost:      trueCost,
				TimedOut:      er.TimedOut,
			})
		}
	}
	return out, nil
}

// trueCardinality executes the query (under the SS plan, which is
// typically cheapest) and returns the exact result count.
func trueCardinality(d *Dataset, q *sparql.Query, maxOps int64) (float64, error) {
	pl, err := d.Planner("SS")
	if err != nil {
		return 0, err
	}
	plan := pl.Plan(q)
	er, err := engine.Run(d.Store, plan.Order(), engine.Options{
		CountOnly: true,
		MaxOps:    maxOps * 4, // truth gets a larger budget than runs
	})
	if err != nil {
		return 0, err
	}
	return float64(er.Count), nil
}

// PlanWinners summarizes a runtime experiment the way the paper's
// Summary paragraph does: for every query, which approach had the fastest
// mean runtime, and SS/GS overhead relative to the winner.
type PlanWinners struct {
	// Wins counts queries won per approach.
	Wins map[string]int
	// SSOverhead and GSOverhead are the mean relative runtime overheads
	// of SS and GS versus the per-query best plan (1.0 = always best).
	SSOverhead, GSOverhead float64
}

// Winners computes the summary statistics from runtime results.
func Winners(results []RuntimeResult) PlanWinners {
	byQuery := map[string][]RuntimeResult{}
	for _, r := range results {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	w := PlanWinners{Wins: map[string]int{}}
	var ssSum, gsSum float64
	n := 0
	for _, rs := range byQuery {
		best := rs[0]
		var ss, gs *RuntimeResult
		for i := range rs {
			if rs[i].MeanOps < best.MeanOps {
				best = rs[i]
			}
			switch rs[i].Approach {
			case "SS":
				ss = &rs[i]
			case "GS":
				gs = &rs[i]
			}
		}
		w.Wins[best.Approach]++
		if ss != nil && gs != nil && best.MeanOps > 0 {
			ssSum += ss.MeanOps / best.MeanOps
			gsSum += gs.MeanOps / best.MeanOps
			n++
		}
	}
	if n > 0 {
		w.SSOverhead = ssSum / float64(n)
		w.GSOverhead = gsSum / float64(n)
	}
	return w
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// QueryByName finds a workload query in the dataset.
func (d *Dataset) QueryByName(name string) (workloads.Query, error) {
	q, ok := workloads.ByName(d.Queries, name)
	if !ok {
		return workloads.Query{}, fmt.Errorf("bench: dataset %s has no query %q", d.Name, name)
	}
	return q, nil
}

// PlanningTimeResult records the planning latency of one approach over
// one query, supporting the paper's claim that "query planning time is
// always less than 20 milliseconds for all approaches and queries".
type PlanningTimeResult struct {
	Query    string
	Approach string
	MeanUs   float64 // mean planning time in microseconds
	MaxUs    float64
}

// PlanningTimeExperiment measures pure optimization latency (no
// execution) for every approach and query.
func PlanningTimeExperiment(d *Dataset, cfg RunConfig) ([]PlanningTimeResult, error) {
	cfg = cfg.withDefaults()
	var out []PlanningTimeResult
	for _, wq := range d.Queries {
		parsed, err := wq.Parse()
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %s/%s: %w", d.Name, wq.Name, err)
		}
		for _, pl := range d.Planners() {
			res := PlanningTimeResult{Query: wq.Name, Approach: pl.Name()}
			var total float64
			for i := 0; i < cfg.Runs; i++ {
				start := time.Now()
				_ = pl.Plan(parsed)
				us := float64(time.Since(start).Microseconds())
				total += us
				if us > res.MaxUs {
					res.MaxUs = us
				}
			}
			res.MeanUs = total / float64(cfg.Runs)
			out = append(out, res)
		}
	}
	return out, nil
}
