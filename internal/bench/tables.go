package bench

import (
	"fmt"
	"sort"
	"strings"

	"rdfshapes/internal/engine"
	"rdfshapes/internal/gstats"
	"rdfshapes/internal/rdf"
	"rdfshapes/internal/store"
)

// Table2Row is one row of the paper's Table 2: a triple pattern in plan
// order with its statistics, estimates, and true join cardinality.
type Table2Row struct {
	Pattern      string
	DSC, DOC     float64
	ETPCard      float64
	EJoinCard    float64
	TrueJoinCard float64
}

// Table2 is the join ordering of the example query under one approach.
type Table2 struct {
	Approach  string
	Rows      []Table2Row
	EstTotal  float64 // Σ estimated join cardinalities (plan cost)
	TrueTotal float64 // Σ true join cardinalities
}

// Table2Experiment reproduces Tables 2a/2b: the example query C0 planned
// with global statistics and with shape statistics, with per-step
// estimated and true join cardinalities.
func Table2Experiment(d *Dataset, cfg RunConfig) ([]Table2, error) {
	cfg = cfg.withDefaults()
	wq, err := d.QueryByName("C0")
	if err != nil {
		return nil, err
	}
	parsed, err := wq.Parse()
	if err != nil {
		return nil, err
	}
	var out []Table2
	for _, name := range []string{"GS", "SS"} {
		pl, err := d.Planner(name)
		if err != nil {
			return nil, err
		}
		est := d.Estimator(name)
		plan := pl.Plan(parsed)
		er, err := engine.Run(d.Store, plan.Order(), engine.Options{
			CountOnly: true,
			MaxOps:    cfg.MaxOps * 4,
		})
		if err != nil {
			return nil, err
		}
		t2 := Table2{Approach: name}
		for i, s := range plan.Steps {
			ts := est.EstimateTP(parsed, s.Pattern)
			row := Table2Row{
				Pattern:      compactPattern(d, s.Pattern.String()),
				DSC:          ts.DSC,
				DOC:          ts.DOC,
				ETPCard:      ts.Card,
				EJoinCard:    s.JoinEstimate,
				TrueJoinCard: float64(er.Intermediate[i]),
			}
			if i > 0 { // the paper leaves the seed's join estimate blank
				t2.EstTotal += s.JoinEstimate
				t2.TrueTotal += float64(er.Intermediate[i])
			}
			t2.Rows = append(t2.Rows, row)
		}
		out = append(out, t2)
	}
	return out, nil
}

func compactPattern(d *Dataset, s string) string {
	// shrink full IRIs using the dataset prefixes for readable tables
	for strings.Contains(s, "<") {
		start := strings.IndexByte(s, '<')
		end := strings.IndexByte(s[start:], '>')
		if end < 0 {
			break
		}
		iri := s[start+1 : start+end]
		q, ok := d.Prefixes.Compact(iri)
		if !ok {
			q = localOf(iri)
		}
		s = s[:start] + q + s[start+end+1:]
	}
	return s
}

func localOf(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' || iri[i] == '#' {
			return iri[i+1:]
		}
	}
	return iri
}

// Table3Row is one dataset's characteristics (the paper's Table 3).
type Table3Row struct {
	Dataset             string
	Triples             int64
	DistinctObjects     int64
	DistinctSubjects    int64
	TypeTriples         int64
	DistinctTypeObjects int64
}

// Table3 computes dataset characteristics.
func Table3(ds ...*Dataset) []Table3Row {
	var out []Table3Row
	for _, d := range ds {
		out = append(out, table3Row(d.Name, d.Global))
	}
	return out
}

func table3Row(name string, g *gstats.Global) Table3Row {
	return Table3Row{
		Dataset:             name,
		Triples:             g.Triples,
		DistinctObjects:     g.DistinctObjects,
		DistinctSubjects:    g.DistinctSubjects,
		TypeTriples:         g.TypeStat().Count,
		DistinctTypeObjects: g.DistinctTypeObjects(),
	}
}

// Table3Extra computes one characteristics row directly from a graph,
// used for the WATDIV-L column: the paper's Table 3 reports the larger
// WatDiv variant only here, so building the full statistics artifacts
// for it would be wasted work.
func Table3Extra(name string, g rdf.Graph) Table3Row {
	return table3Row(name, gstats.Compute(store.Load(g)))
}

// ---- text rendering ----

// FormatTable2 renders Tables 2a/2b.
func FormatTable2(ts []Table2) string {
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "Join ordering using %s statistics (O_%s)\n", longName(t.Approach), strings.ToLower(t.Approach))
		fmt.Fprintf(&b, "%3s  %-52s %12s %12s %14s %14s %14s\n",
			"#", "Triple Pattern", "DSC", "DOC", "E_TP Card", "E⋈ Card", "T⋈ Card")
		for i, r := range t.Rows {
			join := fmt.Sprintf("%14.0f", r.EJoinCard)
			if i == 0 {
				join = fmt.Sprintf("%14s", "—")
			}
			fmt.Fprintf(&b, "%3d. %-52s %12.0f %12.0f %14.0f %s %14.0f\n",
				i+1, r.Pattern, r.DSC, r.DOC, r.ETPCard, join, r.TrueJoinCard)
		}
		fmt.Fprintf(&b, "%86s Σ=%12.0f Σ=%12.0f\n\n", "", t.EstTotal, t.TrueTotal)
	}
	return b.String()
}

func longName(approach string) string {
	switch approach {
	case "GS":
		return "Global"
	case "SS":
		return "Shapes"
	default:
		return approach
	}
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s", r.Dataset)
	}
	b.WriteByte('\n')
	line := func(label string, get func(Table3Row) int64) {
		fmt.Fprintf(&b, "%-32s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%12d", get(r))
		}
		b.WriteByte('\n')
	}
	line("# of triples", func(r Table3Row) int64 { return r.Triples })
	line("# of distinct objects", func(r Table3Row) int64 { return r.DistinctObjects })
	line("# of distinct subjects", func(r Table3Row) int64 { return r.DistinctSubjects })
	line("# of distinct RDF type triples", func(r Table3Row) int64 { return r.TypeTriples })
	line("# of distinct RDF type objects", func(r Table3Row) int64 { return r.DistinctTypeObjects })
	return b.String()
}

// FormatRuntime renders a Figure 4a/4b series as a text matrix
// (queries × approaches, mean ms ± std, "T/O" for budget hits).
func FormatRuntime(results []RuntimeResult) string {
	queries, cell := pivot(results, func(r RuntimeResult) (string, string) { return r.Query, r.Approach })
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "query")
	for _, a := range ApproachNames {
		fmt.Fprintf(&b, "%20s", a)
	}
	b.WriteByte('\n')
	for _, q := range queries {
		fmt.Fprintf(&b, "%-6s", q)
		for _, a := range ApproachNames {
			r, ok := cell[q+"\x00"+a]
			if !ok {
				fmt.Fprintf(&b, "%20s", "-")
				continue
			}
			s := fmt.Sprintf("%.1f±%.1f", r.MeanMs, r.StdMs)
			if r.TimedOut {
				s += " T/O"
			}
			fmt.Fprintf(&b, "%20s", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatQError renders a Figure 4c/4d series.
func FormatQError(results []QErrorResult) string {
	approaches := []string{"SS", "GS", "GDB", "CS", "SumRDF"}
	type key struct{ q, a string }
	cell := map[key]QErrorResult{}
	var queries []string
	seen := map[string]bool{}
	for _, r := range results {
		cell[key{r.Query, r.Approach}] = r
		if !seen[r.Query] {
			seen[r.Query] = true
			queries = append(queries, r.Query)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s", "query", "true-card")
	for _, a := range approaches {
		fmt.Fprintf(&b, "%14s", a)
	}
	b.WriteByte('\n')
	for _, q := range queries {
		fmt.Fprintf(&b, "%-6s", q)
		if r, ok := cell[key{q, "SS"}]; ok {
			fmt.Fprintf(&b, " %14.0f", r.True)
		} else {
			fmt.Fprintf(&b, " %14s", "-")
		}
		for _, a := range approaches {
			if r, ok := cell[key{q, a}]; ok {
				fmt.Fprintf(&b, "%14.2f", r.QError)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QErrorBuckets summarizes a q-error series the way the paper's prose
// does: per approach, how many queries land below 15, below 250, and at
// or above 250.
func QErrorBuckets(results []QErrorResult) map[string][3]int {
	out := map[string][3]int{}
	for _, r := range results {
		b := out[r.Approach]
		switch {
		case r.QError < 15:
			b[0]++
		case r.QError < 250:
			b[1]++
		default:
			b[2]++
		}
		out[r.Approach] = b
	}
	return out
}

// FormatQErrorBuckets renders the bucket summary.
func FormatQErrorBuckets(buckets map[string][3]int) string {
	var names []string
	for n := range buckets {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %10s %8s\n", "approach", "<15", "15..250", ">=250")
	for _, n := range names {
		v := buckets[n]
		fmt.Fprintf(&b, "%-8s %8d %10d %8d\n", n, v[0], v[1], v[2])
	}
	return b.String()
}

// FormatCost renders a Figure 4e/4f series: per query, the estimated and
// true plan costs for SS and GS.
func FormatCost(results []CostResult) string {
	type key struct{ q, a string }
	cell := map[key]CostResult{}
	var queries []string
	seen := map[string]bool{}
	for _, r := range results {
		cell[key{r.Query, r.Approach}] = r
		if !seen[r.Query] {
			seen[r.Query] = true
			queries = append(queries, r.Query)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %16s %16s %16s %16s\n",
		"query", "SS est-cost", "SS true-cost", "GS est-cost", "GS true-cost")
	for _, q := range queries {
		ss := cell[key{q, "SS"}]
		gs := cell[key{q, "GS"}]
		fmt.Fprintf(&b, "%-6s %16.0f %16.0f %16.0f %16.0f\n",
			q, ss.EstimatedCost, ss.TrueCost, gs.EstimatedCost, gs.TrueCost)
	}
	return b.String()
}

// FormatPrep renders the preprocessing-overhead comparison (Section 7's
// implementation paragraph): times and artifact sizes per approach.
func FormatPrep(ds ...*Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %16s %16s %12s %14s\n",
		"dataset", "annotate", "charsets", "sumrdf", "shapes-plain", "shapes-annot", "cs-sets", "summary-edges")
	for _, d := range ds {
		p := d.Prep
		fmt.Fprintf(&b, "%-10s %14s %14s %14s %15dB %15dB %12d %14d\n",
			d.Name, p.AnnotateTime.Round(10e3), p.CSTime.Round(10e3), p.SummaryTime.Round(10e3),
			p.ShapesPlainBytes, p.ShapesAnnotatedBytes, p.CSSets, p.SummaryEdges)
	}
	return b.String()
}

// FormatWinners renders the plan-winner summary.
func FormatWinners(w PlanWinners) string {
	var names []string
	for n := range w.Wins {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("best plans per approach: ")
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", n, w.Wins[n])
	}
	fmt.Fprintf(&b, "\nmean overhead vs best plan: SS=%.2fx GS=%.2fx\n", w.SSOverhead, w.GSOverhead)
	return b.String()
}

// pivot indexes results by (query, approach) preserving query order.
func pivot(results []RuntimeResult, key func(RuntimeResult) (string, string)) ([]string, map[string]RuntimeResult) {
	cell := map[string]RuntimeResult{}
	var queries []string
	seen := map[string]bool{}
	for _, r := range results {
		q, a := key(r)
		cell[q+"\x00"+a] = r
		if !seen[q] {
			seen[q] = true
			queries = append(queries, q)
		}
	}
	return queries, cell
}

// FormatPlanningTime renders the planning-latency experiment: the
// per-approach maximum and mean over all queries.
func FormatPlanningTime(results []PlanningTimeResult) string {
	type agg struct {
		sum, max float64
		n        int
	}
	byApproach := map[string]*agg{}
	for _, r := range results {
		a := byApproach[r.Approach]
		if a == nil {
			a = &agg{}
			byApproach[r.Approach] = a
		}
		a.sum += r.MeanUs
		a.n++
		if r.MaxUs > a.max {
			a.max = r.MaxUs
		}
	}
	var names []string
	for n := range byApproach {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s\n", "approach", "mean-plan-µs", "max-plan-µs")
	for _, n := range names {
		a := byApproach[n]
		fmt.Fprintf(&b, "%-8s %14.1f %14.1f\n", n, a.sum/float64(a.n), a.max)
	}
	return b.String()
}
