package bench

import "math"

// Quantile returns the q-quantile of an ascending-sorted sample using
// the nearest-rank method (q in (0, 1]; q = 0.5 is the median). It is
// the single quantile definition shared by the paper-experiment
// summaries and the load-generator reports (internal/loadgen), so
// latency and q-error percentiles mean the same thing in
// EXPERIMENTS.md and BENCH_<n>.json. Returns 0 for an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
