package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV writers export experiment series in a column layout ready for
// plotting tools, so the paper's figures can be redrawn from
// `cmd/repro -csv <dir>` output.

// WriteRuntimeCSV exports a Figure 4a/4b series.
func WriteRuntimeCSV(w io.Writer, results []RuntimeResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "approach", "mean_ms", "std_ms", "mean_ops", "timed_out"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range results {
		rec := []string{
			r.Query, r.Approach,
			formatFloat(r.MeanMs), formatFloat(r.StdMs),
			formatFloat(r.MeanOps), strconv.FormatBool(r.TimedOut),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteQErrorCSV exports a Figure 4c/4d series.
func WriteQErrorCSV(w io.Writer, results []QErrorResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "approach", "estimate", "true", "q_error"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range results {
		rec := []string{
			r.Query, r.Approach,
			formatFloat(r.Estimate), formatFloat(r.True), formatFloat(r.QError),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCostCSV exports a Figure 4e/4f series.
func WriteCostCSV(w io.Writer, results []CostResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "approach", "estimated_cost", "true_cost", "timed_out"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range results {
		rec := []string{
			r.Query, r.Approach,
			formatFloat(r.EstimatedCost), formatFloat(r.TrueCost),
			strconv.FormatBool(r.TimedOut),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV exports dataset characteristics.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "triples", "distinct_objects", "distinct_subjects", "type_triples", "distinct_type_objects"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset,
			strconv.FormatInt(r.Triples, 10),
			strconv.FormatInt(r.DistinctObjects, 10),
			strconv.FormatInt(r.DistinctSubjects, 10),
			strconv.FormatInt(r.TypeTriples, 10),
			strconv.FormatInt(r.DistinctTypeObjects, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePlanningTimeCSV exports the P2 series.
func WritePlanningTimeCSV(w io.Writer, results []PlanningTimeResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"query", "approach", "mean_us", "max_us"}); err != nil {
		return fmt.Errorf("bench: writing csv: %w", err)
	}
	for _, r := range results {
		rec := []string{r.Query, r.Approach, formatFloat(r.MeanUs), formatFloat(r.MaxUs)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
