package bench

import (
	"fmt"
	"io"
	"strings"

	"rdfshapes/internal/engine"
	"rdfshapes/internal/obsv"
)

// TraceExperiment executes every workload query once with the SS planner
// under an obsv.Collector — the serve-time observability layer driven by
// the bench harness — and returns the collector. Each trace pairs the
// planner's per-step join estimates with the engine's measured
// intermediate sizes, exactly as the HTTP server records live traffic,
// so cmd/repro can print the same accounting the /trace/recent endpoint
// exposes.
func TraceExperiment(d *Dataset, cfg RunConfig) (*obsv.Collector, error) {
	cfg = cfg.withDefaults()
	c := obsv.NewCollector(len(d.Queries))
	pl, err := d.Planner("SS")
	if err != nil {
		return nil, err
	}
	for _, wq := range d.Queries {
		q, err := wq.Parse()
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %s/%s: %w", d.Name, wq.Name, err)
		}
		plan := pl.Plan(q)
		var rep engine.ExecReport
		_, err = engine.Run(d.Store, plan.Order(), engine.Options{
			CountOnly: true,
			MaxOps:    cfg.MaxOps,
			Observer:  func(r engine.ExecReport) { rep = r },
		})
		t := obsv.QueryTrace{
			Query:         wq.Name,
			Planner:       plan.Estimator,
			Plan:          plan.String(),
			EstimatedCost: plan.Cost,
		}
		if err != nil {
			t.Err = err.Error()
		} else {
			t.Rows = rep.Count
			t.Ops = rep.Ops
			t.WallNanos = rep.Wall.Nanoseconds()
			t.TimedOut = rep.TimedOut
			t.LimitHit = rep.LimitHit
			ests := plan.Estimates()
			for i, actual := range rep.Intermediate {
				if i >= len(ests) {
					break
				}
				t.Patterns = append(t.Patterns, obsv.PatternTrace{
					Pattern:   plan.Steps[i].Pattern.String(),
					Estimated: ests[i],
					Actual:    actual,
				})
			}
		}
		t.Finish()
		c.Record(t)
	}
	return c, nil
}

// FormatTraces renders traces as the trace summary table cmd/repro
// prints after each workload: per query, the planner, result rows, the
// final estimated vs. actual intermediate cardinality with its q-error,
// index ops, wall time, and timeout/limit flags.
func FormatTraces(traces []obsv.QueryTrace) string {
	var b strings.Builder
	writeTraces(&b, traces)
	return b.String()
}

func writeTraces(w io.Writer, traces []obsv.QueryTrace) {
	fmt.Fprintf(w, "%-8s %-8s %10s %12s %12s %9s %10s %9s %s\n",
		"query", "planner", "rows", "est-card", "true-card", "q-error", "ops", "ms", "flags")
	// Recent returns newest first; present in execution order.
	for i := len(traces) - 1; i >= 0; i-- {
		t := traces[i]
		var flags []string
		if t.TimedOut {
			flags = append(flags, "timeout")
		}
		if t.LimitHit {
			flags = append(flags, "limit")
		}
		if t.Err != "" {
			flags = append(flags, "error")
		}
		est, act, qerr := "-", "-", "-"
		if n := len(t.Patterns); n > 0 {
			last := t.Patterns[n-1]
			est = fmt.Sprintf("%.0f", last.Estimated)
			act = fmt.Sprintf("%d", last.Actual)
			qerr = fmt.Sprintf("%.2f", t.QError)
		}
		fmt.Fprintf(w, "%-8s %-8s %10d %12s %12s %9s %10d %9.2f %s\n",
			t.Query, t.Planner, t.Rows, est, act, qerr, t.Ops,
			float64(t.WallNanos)/1e6, strings.Join(flags, ","))
	}
}
