package bench

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// shared small datasets: building them is the expensive part of these
// tests, so do it once.
var shared struct {
	once               sync.Once
	lubm, watdiv, yago *Dataset
	err                error
}

func load(t *testing.T) (*Dataset, *Dataset, *Dataset) {
	t.Helper()
	shared.once.Do(func() {
		if shared.lubm, shared.err = LUBMDataset(Small); shared.err != nil {
			return
		}
		if shared.watdiv, shared.err = WatDivDataset(Small); shared.err != nil {
			return
		}
		shared.yago, shared.err = YAGODataset(Small)
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.lubm, shared.watdiv, shared.yago
}

var testCfg = RunConfig{Runs: 2, Seed: 1}

func TestDatasetAssembly(t *testing.T) {
	l, w, y := load(t)
	for _, d := range []*Dataset{l, w, y} {
		if d.Store.Len() == 0 {
			t.Errorf("%s: empty store", d.Name)
		}
		if !d.Shapes.Annotated() {
			t.Errorf("%s: shapes not annotated", d.Name)
		}
		if d.CS.NumSets() == 0 {
			t.Errorf("%s: no characteristic sets", d.Name)
		}
		if d.Summary.NumBuckets() == 0 {
			t.Errorf("%s: empty summary", d.Name)
		}
		if d.Prep.ShapesAnnotatedBytes <= d.Prep.ShapesPlainBytes {
			t.Errorf("%s: annotation did not grow the shapes serialization", d.Name)
		}
		if len(d.Queries) == 0 {
			t.Errorf("%s: no workload", d.Name)
		}
	}
	// YAGO's heterogeneity must show in its shape count
	if y.Shapes.Len() < 10*l.Shapes.Len() {
		t.Errorf("YAGO shapes (%d) not much larger than LUBM's (%d)", y.Shapes.Len(), l.Shapes.Len())
	}
}

func TestPlannersAndEstimators(t *testing.T) {
	l, _, _ := load(t)
	planners := l.Planners()
	if len(planners) != len(ApproachNames) {
		t.Fatalf("planners = %d, want %d", len(planners), len(ApproachNames))
	}
	for i, p := range planners {
		if p.Name() != ApproachNames[i] {
			t.Errorf("planner %d = %s, want %s", i, p.Name(), ApproachNames[i])
		}
	}
	if _, err := l.Planner("nosuch"); err == nil {
		t.Error("unknown planner accepted")
	}
	if l.Estimator("Jena") != nil {
		t.Error("Jena must have no estimator")
	}
	for _, name := range []string{"SS", "GS", "GDB", "CS", "SumRDF"} {
		if l.Estimator(name) == nil {
			t.Errorf("estimator %s missing", name)
		}
	}
}

func TestRuntimeExperimentShape(t *testing.T) {
	l, _, _ := load(t)
	rs, err := RuntimeExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(l.Queries)*len(ApproachNames) {
		t.Fatalf("results = %d, want %d", len(rs), len(l.Queries)*len(ApproachNames))
	}
	for _, r := range rs {
		if r.MeanOps <= 0 {
			t.Errorf("%s/%s: non-positive ops", r.Query, r.Approach)
		}
	}
	w := Winners(rs)
	total := 0
	for _, n := range w.Wins {
		total += n
	}
	if total != len(l.Queries) {
		t.Errorf("winners cover %d queries, want %d", total, len(l.Queries))
	}
	// the paper's headline: SS proposes the best plan for most queries
	// and its overhead versus the per-query best plan stays small
	if w.Wins["SS"] < len(l.Queries)/2 {
		t.Errorf("SS wins only %d of %d queries", w.Wins["SS"], len(l.Queries))
	}
	if w.SSOverhead > w.GSOverhead {
		t.Errorf("SS overhead %.2f worse than GS %.2f", w.SSOverhead, w.GSOverhead)
	}
	if out := FormatRuntime(rs); !strings.Contains(out, "Q9") {
		t.Error("FormatRuntime misses queries")
	}
	if out := FormatWinners(w); !strings.Contains(out, "SS=") {
		t.Error("FormatWinners misses SS")
	}
}

func TestQErrorExperimentShape(t *testing.T) {
	l, _, _ := load(t)
	qs, err := QErrorExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 estimators (Jena excluded)
	if len(qs) != len(l.Queries)*5 {
		t.Fatalf("results = %d, want %d", len(qs), len(l.Queries)*5)
	}
	perApproach := map[string][]QErrorResult{}
	for _, r := range qs {
		if r.QError < 1 {
			t.Errorf("%s/%s: q-error %v below 1", r.Query, r.Approach, r.QError)
		}
		perApproach[r.Approach] = append(perApproach[r.Approach], r)
	}
	// SS must dominate GS in aggregate (geometric mean of q-errors)
	if gm(perApproach["SS"]) > gm(perApproach["GS"]) {
		t.Errorf("SS gmean q-error %.2f worse than GS %.2f",
			gm(perApproach["SS"]), gm(perApproach["GS"]))
	}
	// CS must be (near-)exact on LUBM star queries
	for _, r := range perApproach["CS"] {
		if strings.HasPrefix(r.Query, "S") && r.QError > 1.5 {
			t.Errorf("CS q-error %v on star query %s", r.QError, r.Query)
		}
	}
	buckets := QErrorBuckets(qs)
	sum := 0
	for _, b := range buckets {
		sum += b[0] + b[1] + b[2]
	}
	if sum != len(qs) {
		t.Errorf("buckets cover %d results, want %d", sum, len(qs))
	}
	if out := FormatQError(qs); !strings.Contains(out, "true-card") {
		t.Error("FormatQError header missing")
	}
	if out := FormatQErrorBuckets(buckets); !strings.Contains(out, "<15") {
		t.Error("FormatQErrorBuckets header missing")
	}
}

// gm is the geometric mean of the q-errors.
func gm(rs []QErrorResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, r := range rs {
		logSum += math.Log(r.QError)
	}
	return math.Exp(logSum / float64(len(rs)))
}

func TestCostExperimentShape(t *testing.T) {
	l, _, _ := load(t)
	cs, err := CostExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(l.Queries)*2 {
		t.Fatalf("results = %d, want %d", len(cs), len(l.Queries)*2)
	}
	for _, c := range cs {
		if c.EstimatedCost <= 0 || c.TrueCost <= 0 {
			t.Errorf("%s/%s: non-positive costs %+v", c.Query, c.Approach, c)
		}
	}
	if out := FormatCost(cs); !strings.Contains(out, "SS est-cost") {
		t.Error("FormatCost header missing")
	}
}

func TestTable2Experiment(t *testing.T) {
	l, _, _ := load(t)
	ts, err := Table2Experiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Approach != "GS" || ts[1].Approach != "SS" {
		t.Fatalf("tables = %+v", ts)
	}
	for _, tab := range ts {
		if len(tab.Rows) != 9 {
			t.Errorf("%s: %d rows, want the paper's 9", tab.Approach, len(tab.Rows))
		}
		if tab.EstTotal <= 0 || tab.TrueTotal <= 0 {
			t.Errorf("%s: totals %+v", tab.Approach, tab)
		}
	}
	// shape statistics must tighten the estimated cost toward the truth
	gsGap := ratio(ts[0].EstTotal, ts[0].TrueTotal)
	ssGap := ratio(ts[1].EstTotal, ts[1].TrueTotal)
	if ssGap > gsGap {
		t.Errorf("SS cost gap %.2f worse than GS %.2f", ssGap, gsGap)
	}
	out := FormatTable2(ts)
	for _, want := range []string{"O_gs", "O_ss", "ub:FullProfessor", "Σ="} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q", want)
		}
	}
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return a
	}
	return a / b
}

func TestTable3(t *testing.T) {
	l, w, y := load(t)
	rows := Table3(l, w, y)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Triples <= 0 || r.DistinctSubjects <= 0 || r.DistinctObjects <= 0 {
			t.Errorf("%s: %+v", r.Dataset, r)
		}
	}
	// YAGO's class count dominates, as in the paper's Table 3
	if rows[2].DistinctTypeObjects <= rows[0].DistinctTypeObjects {
		t.Error("YAGO must have many more classes than LUBM")
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "# of triples") || !strings.Contains(out, "YAGO-4") {
		t.Errorf("FormatTable3 output:\n%s", out)
	}
}

func TestPreprocessingComparison(t *testing.T) {
	l, _, _ := load(t)
	p := l.Prep
	// the paper's headline: annotation is much cheaper than CS
	// extraction; exact ratios vary but CS must not be cheaper
	if p.AnnotateTime > p.CSTime {
		t.Errorf("annotate %v slower than charsets %v", p.AnnotateTime, p.CSTime)
	}
	if out := FormatPrep(l); !strings.Contains(out, "LUBM") {
		t.Error("FormatPrep missing dataset")
	}
}

func TestQueryByName(t *testing.T) {
	l, _, _ := load(t)
	if _, err := l.QueryByName("C0"); err != nil {
		t.Error(err)
	}
	if _, err := l.QueryByName("nope"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestPlanningTimeExperiment(t *testing.T) {
	l, _, _ := load(t)
	rs, err := PlanningTimeExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(l.Queries)*len(ApproachNames) {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		// the paper reports < 20 ms for all approaches; allow generous
		// slack for CI noise but catch pathological planners
		if r.MaxUs > 100_000 {
			t.Errorf("%s/%s: planning took %.0f µs", r.Query, r.Approach, r.MaxUs)
		}
	}
	if out := FormatPlanningTime(rs); !strings.Contains(out, "max-plan-µs") {
		t.Error("FormatPlanningTime header missing")
	}
}

func TestCSVWriters(t *testing.T) {
	l, _, _ := load(t)
	var buf strings.Builder

	rs, err := RuntimeExperiment(l, RunConfig{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRuntimeCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rs)+1 {
		t.Errorf("runtime csv rows = %d, want %d", len(lines), len(rs)+1)
	}
	if !strings.HasPrefix(lines[0], "query,approach,mean_ms") {
		t.Errorf("runtime csv header = %q", lines[0])
	}

	buf.Reset()
	qs, err := QErrorExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteQErrorCSV(&buf, qs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(qs)+1 {
		t.Errorf("qerror csv rows = %d, want %d", got, len(qs)+1)
	}

	buf.Reset()
	cs, err := CostExperiment(l, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCostCSV(&buf, cs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(cs)+1 {
		t.Errorf("cost csv rows = %d, want %d", got, len(cs)+1)
	}

	buf.Reset()
	if err := WriteTable3CSV(&buf, Table3(l)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LUBM") {
		t.Error("table3 csv missing dataset")
	}

	buf.Reset()
	ps, err := PlanningTimeExperiment(l, RunConfig{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlanningTimeCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(ps)+1 {
		t.Errorf("planning csv rows = %d, want %d", got, len(ps)+1)
	}
}

func TestRuntimeExperimentOtherDatasets(t *testing.T) {
	_, w, y := load(t)
	for _, d := range []*Dataset{w, y} {
		rs, err := RuntimeExperiment(d, RunConfig{Runs: 1, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		wn := Winners(rs)
		total := 0
		for _, n := range wn.Wins {
			total += n
		}
		if total != len(d.Queries) {
			t.Errorf("%s: winners cover %d of %d queries", d.Name, total, len(d.Queries))
		}
		// SS must stay competitive on every dataset: within 2x of the
		// per-query best on average
		if wn.SSOverhead > 2 {
			t.Errorf("%s: SS overhead %.2fx", d.Name, wn.SSOverhead)
		}
	}
}

func TestQErrorExperimentYAGO(t *testing.T) {
	_, _, y := load(t)
	qs, err := QErrorExperiment(y, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	per := map[string][]QErrorResult{}
	for _, r := range qs {
		per[r.Approach] = append(per[r.Approach], r)
	}
	// the heterogeneous dataset is where scoped statistics matter most:
	// SS must not be worse than GS
	if gm(per["SS"]) > gm(per["GS"]) {
		t.Errorf("SS gmean %.2f worse than GS %.2f on YAGO", gm(per["SS"]), gm(per["GS"]))
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty sample")
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, {0.95, 10}, {0.99, 10}, {1, 10}, {0.1, 1},
	} {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single sample = %v", got)
	}
}
