package rdfshapes_test

import (
	"bytes"
	"strings"
	"testing"

	"rdfshapes"
)

func TestUpdateRoundTrip(t *testing.T) {
	db := open(t)
	res, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person . ex:carol ex:name "Carol" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 0 {
		t.Fatalf("result = %+v, want 2 inserted", res)
	}
	if db.NumTriples() != 7 {
		t.Errorf("NumTriples = %d, want 7", db.NumTriples())
	}

	rows, err := db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ex:carol ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0]["n"] != `"Carol"` {
		t.Fatalf("inserted triple not visible: %v", rows.Rows)
	}

	res, err = db.Update(`PREFIX ex: <http://ex/>
		DELETE DATA { ex:carol ex:name "Carol" } ;
		DELETE DATA { ex:carol a ex:Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 {
		t.Fatalf("result = %+v, want 2 deleted", res)
	}
	rows, err = db.Query(`PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ex:carol ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 0 {
		t.Errorf("deleted triple still visible: %v", rows.Rows)
	}
	if db.NumTriples() != 5 {
		t.Errorf("NumTriples = %d, want 5", db.NumTriples())
	}
	if n := db.UpdatesApplied(); n != 2 {
		t.Errorf("UpdatesApplied = %d, want 2", n)
	}
}

func TestUpdateNoOpsExcluded(t *testing.T) {
	db := open(t)
	res, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:alice ex:name "Alice" } ;
		DELETE DATA { ex:nobody ex:name "Nobody" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 {
		t.Errorf("result = %+v, want all no-ops", res)
	}
	if db.NumTriples() != 5 {
		t.Errorf("NumTriples = %d, want 5", db.NumTriples())
	}
}

func TestUpdateParseErrorLeavesDataIntact(t *testing.T) {
	db := open(t)
	if _, err := db.Update(`INSERT DATA { ?v <http://p> <http://o> }`); err == nil {
		t.Fatal("variable in DATA block accepted")
	}
	if db.NumTriples() != 5 {
		t.Errorf("NumTriples = %d after rejected update, want 5", db.NumTriples())
	}
}

// TestUpdateExactStatsDeltas is the acceptance check: after a committed
// batch, the per-predicate global count and the shape sh:count move by
// exactly the delta.
func TestUpdateExactStatsDeltas(t *testing.T) {
	db := open(t)
	knowsBefore := db.Stats().Pred["http://ex/knows"].Count
	personBefore := db.Shapes().ByClass("http://ex/Person").Count
	propBefore := db.Shapes().ByClass("http://ex/Person").Property("http://ex/knows").Stats.Count

	_, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA {
			ex:carol a ex:Person .
			ex:carol ex:knows ex:alice .
			ex:bob ex:knows ex:alice
		}`)
	if err != nil {
		t.Fatal(err)
	}

	if got := db.Stats().Pred["http://ex/knows"].Count; got != knowsBefore+2 {
		t.Errorf("Pred[knows].Count = %d, want %d", got, knowsBefore+2)
	}
	if got := db.Shapes().ByClass("http://ex/Person").Count; got != personBefore+1 {
		t.Errorf("Person sh:count = %d, want %d", got, personBefore+1)
	}
	if got := db.Shapes().ByClass("http://ex/Person").Property("http://ex/knows").Stats.Count; got != propBefore+2 {
		t.Errorf("Person/knows sh:count = %d, want %d", got, propBefore+2)
	}
	if got := db.Stats().Triples; got != 8 {
		t.Errorf("Triples = %d, want 8", got)
	}

	_, err = db.Update(`PREFIX ex: <http://ex/>
		DELETE DATA { ex:bob ex:knows ex:alice }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Pred["http://ex/knows"].Count; got != knowsBefore+1 {
		t.Errorf("Pred[knows].Count after delete = %d, want %d", got, knowsBefore+1)
	}
	if got := db.Shapes().ByClass("http://ex/Person").Property("http://ex/knows").Stats.Count; got != propBefore+1 {
		t.Errorf("Person/knows sh:count after delete = %d, want %d", got, propBefore+1)
	}
}

// TestUpdateReflectsInEstimate verifies the planner sees maintained
// statistics without a reload: the shape-statistics estimate for a typed
// star query tracks the instance count exactly.
func TestUpdateReflectsInEstimate(t *testing.T) {
	db := open(t)
	src := `PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person . ?x ex:name ?n . }`
	est, err := db.EstimateCount(src)
	if err != nil {
		t.Fatal(err)
	}
	if est != 2 {
		t.Fatalf("EstimateCount = %v, want 2", est)
	}
	_, err = db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person . ex:carol ex:name "Carol" }`)
	if err != nil {
		t.Fatal(err)
	}
	est, err = db.EstimateCount(src)
	if err != nil {
		t.Fatal(err)
	}
	if est != 3 {
		t.Errorf("EstimateCount after insert = %v, want 3", est)
	}
}

func TestReannotateZeroesDrift(t *testing.T) {
	db := open(t)
	// a predicate no shape describes on a typed subject is a drift source
	if _, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:alice ex:nickname "Al" }`); err != nil {
		t.Fatal(err)
	}
	if db.StatsDrift() == 0 {
		t.Fatal("StatsDrift = 0 after an approximate adjustment")
	}
	if a, d := db.OverlaySize(); a != 1 || d != 0 {
		t.Fatalf("overlay = +%d/-%d, want +1/-0", a, d)
	}
	if err := db.Reannotate(); err != nil {
		t.Fatal(err)
	}
	if db.StatsDrift() != 0 {
		t.Errorf("StatsDrift = %d after Reannotate, want 0", db.StatsDrift())
	}
	if a, d := db.OverlaySize(); a != 0 || d != 0 {
		t.Errorf("overlay = +%d/-%d after Reannotate, want empty", a, d)
	}
	// the recomputed shapes now describe the new predicate's scope exactly
	if db.NumTriples() != 6 {
		t.Errorf("NumTriples = %d, want 6", db.NumTriples())
	}
}

// TestValidateSeesUncompactedOverlay: Validate runs against the merged
// snapshot view, so a violation committed via Update is reported while
// it still lives in the overlay — and Validate leaves the overlay alone
// instead of compacting it as a side effect.
func TestValidateSeesUncompactedOverlay(t *testing.T) {
	db := open(t)
	if vs := db.Validate(0); len(vs) != 0 {
		t.Fatalf("violations before update: %v", vs)
	}
	// ex:name is inferred as sh:nodeKind Literal; an IRI object violates it
	if _, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person . ex:carol ex:name ex:bob }`); err != nil {
		t.Fatal(err)
	}
	vs := db.Validate(0)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want the overlay's nodeKind violation", vs)
	}
	if !strings.Contains(vs[0].Message, "not a literal") {
		t.Errorf("violation = %v, want a nodeKind message", vs[0])
	}
	if a, d := db.OverlaySize(); a != 2 || d != 0 {
		t.Errorf("overlay = +%d/-%d after Validate, want +2/-0 (no compaction side effect)", a, d)
	}
}

func TestWriteSnapshotIncludesUpdates(t *testing.T) {
	db := open(t)
	if _, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person }`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := rdfshapes.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumTriples() != 6 {
		t.Errorf("NumTriples = %d after snapshot round trip, want 6", rt.NumTriples())
	}
	n, err := rt.Count(`PREFIX ex: <http://ex/>
		SELECT * WHERE { ?x a ex:Person }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Person instances = %d, want 3", n)
	}
}

func TestOldQueriesUnaffectedByUpdates(t *testing.T) {
	db := open(t)
	// QueryEach holds one snapshot for the whole iteration; an update
	// committed mid-iteration must not change what it sees. Simulate by
	// updating from inside the callback.
	seen := 0
	err := db.QueryEach(`PREFIX ex: <http://ex/>
		SELECT ?x WHERE { ?x a ex:Person }`, func(row map[string]string) bool {
		seen++
		if seen == 1 {
			if _, err := db.Update(`PREFIX ex: <http://ex/>
				INSERT DATA { ex:carol a ex:Person . ex:dave a ex:Person }`); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("iteration saw %d persons, want the snapshot's 2", seen)
	}
	if db.NumTriples() != 7 {
		t.Errorf("NumTriples = %d, want 7", db.NumTriples())
	}
}

func TestUpdateTurtleShapesStayServable(t *testing.T) {
	db := open(t)
	if _, err := db.Update(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:carol a ex:Person . ex:carol ex:name "Carol" }`); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.WriteShapesTurtle(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sh:count 3") {
		t.Errorf("serialized shapes lack the updated sh:count:\n%s", buf.String())
	}
}
